//! Conversions between Rust types and HAL message [`Value`]s.
//!
//! HAL is untyped on the wire; its compiler inserts marshalling code from
//! inferred types. In this reproduction the [`crate::messages!`] macro
//! plays that role, and these traits are the marshalling primitives it
//! expands to.

use hal_am::Bytes;
use hal_kernel::{GroupId, MailAddr, Value};

/// Decode a [`Value`] into a concrete Rust type (panics on a type
/// mismatch — the analog of a marshalling bug, which must be loud).
pub trait FromValue: Sized {
    /// Convert, panicking on mismatch.
    fn from_value(v: Value) -> Self;
}

impl FromValue for i64 {
    fn from_value(v: Value) -> Self {
        v.as_int()
    }
}
impl FromValue for f64 {
    fn from_value(v: Value) -> Self {
        v.as_float()
    }
}
impl FromValue for MailAddr {
    fn from_value(v: Value) -> Self {
        v.as_addr()
    }
}
impl FromValue for GroupId {
    fn from_value(v: Value) -> Self {
        v.as_group()
    }
}
impl FromValue for Bytes {
    fn from_value(v: Value) -> Self {
        v.as_bytes()
    }
}
impl FromValue for Value {
    fn from_value(v: Value) -> Self {
        v
    }
}
impl FromValue for bool {
    fn from_value(v: Value) -> Self {
        v.as_int() != 0
    }
}
impl FromValue for u32 {
    fn from_value(v: Value) -> Self {
        u32::try_from(v.as_int()).expect("u32 out of range")
    }
}
impl FromValue for usize {
    fn from_value(v: Value) -> Self {
        usize::try_from(v.as_int()).expect("usize out of range")
    }
}

/// Encode a Rust type as a [`Value`].
pub trait IntoValue {
    /// Convert.
    fn into_value(self) -> Value;
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}
impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }
}
impl IntoValue for MailAddr {
    fn into_value(self) -> Value {
        Value::Addr(self)
    }
}
impl IntoValue for GroupId {
    fn into_value(self) -> Value {
        Value::Group(self)
    }
}
impl IntoValue for Bytes {
    fn into_value(self) -> Value {
        Value::Bytes(self)
    }
}
impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}
impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}
impl IntoValue for u32 {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}
impl IntoValue for usize {
    fn into_value(self) -> Value {
        Value::Int(self as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_kernel::DescriptorId;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(i64::from_value(42i64.into_value()), 42);
        assert_eq!(f64::from_value(2.5f64.into_value()), 2.5);
        assert!(bool::from_value(true.into_value()));
        assert!(!bool::from_value(false.into_value()));
        assert_eq!(u32::from_value(7u32.into_value()), 7);
        assert_eq!(usize::from_value(9usize.into_value()), 9);
    }

    #[test]
    fn roundtrip_addresses() {
        let a = MailAddr::ordinary(3, DescriptorId(4));
        assert_eq!(MailAddr::from_value(a.into_value()), a);
        let g = GroupId::new(1, 2, 3, hal_kernel::Mapping::Block);
        assert_eq!(GroupId::from_value(g.into_value()), g);
    }

    #[test]
    fn roundtrip_bytes() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(Bytes::from_value(b.clone().into_value()), b);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn mismatch_panics() {
        i64::from_value(Value::Float(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn narrowing_checked() {
        u32::from_value(Value::Int(-1));
    }
}
