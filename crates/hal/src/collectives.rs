//! Collective operations built from actor primitives: tree reduction.
//!
//! The paper's runtime provides broadcast over a hypercube-like minimum
//! spanning tree (§6.4); reduction is its mirror image — per-node
//! combiner actors accumulate local contributions and fold subtree
//! results *up* the same binomial tree (rank `j`'s parent is
//! `j & (j-1)`, clearing the lowest set bit). `log P` message depth,
//! `P - 1` cross-node messages, no global synchronization — each
//! combiner fires when its own counter fills, the same local-constraint
//! discipline as everything else in HAL.

use crate::value::IntoValue;
use hal_kernel::kernel::Ctx;
use hal_kernel::{Behavior, BehaviorId, ContRef, MailAddr, Msg, Value};

/// Reduction operators over message values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Integer sum.
    SumInt,
    /// Float sum.
    SumFloat,
    /// Integer minimum.
    MinInt,
    /// Integer maximum.
    MaxInt,
}

impl Op {
    fn encode(self) -> i64 {
        match self {
            Op::SumInt => 0,
            Op::SumFloat => 1,
            Op::MinInt => 2,
            Op::MaxInt => 3,
        }
    }
    fn decode(v: i64) -> Self {
        match v {
            0 => Op::SumInt,
            1 => Op::SumFloat,
            2 => Op::MinInt,
            3 => Op::MaxInt,
            other => panic!("bad op code {other}"),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> Value {
        match self {
            Op::SumInt => Value::Int(0),
            Op::SumFloat => Value::Float(0.0),
            Op::MinInt => Value::Int(i64::MAX),
            Op::MaxInt => Value::Int(i64::MIN),
        }
    }

    /// Combine two values.
    pub fn combine(self, a: &Value, b: &Value) -> Value {
        match self {
            Op::SumInt => Value::Int(a.as_int() + b.as_int()),
            Op::SumFloat => Value::Float(a.as_float() + b.as_float()),
            Op::MinInt => Value::Int(a.as_int().min(b.as_int())),
            Op::MaxInt => Value::Int(a.as_int().max(b.as_int())),
        }
    }
}

/// The contribution selector combiners listen on (send local values
/// here).
pub const CONTRIBUTE: u32 = 0;

/// Where a finished combiner delivers its subtree result.
enum Upstream {
    /// Non-root: forward to the parent combiner.
    Parent(MailAddr),
    /// Root: answer the reduction's continuation.
    Done(ContRef),
}

/// Per-node combiner actor.
struct Combiner {
    op: Op,
    expected: usize,
    received: usize,
    acc: Value,
    upstream: Upstream,
}

impl Behavior for Combiner {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        debug_assert_eq!(msg.selector, CONTRIBUTE);
        self.acc = self.op.combine(&self.acc, &msg.args[0]);
        self.received += 1;
        assert!(
            self.received <= self.expected,
            "combiner overflow: {} contributions, expected {}",
            self.received,
            self.expected
        );
        if self.received == self.expected {
            let result = std::mem::replace(&mut self.acc, self.op.identity());
            match &self.upstream {
                Upstream::Parent(p) => ctx.send(*p, CONTRIBUTE, vec![result]),
                Upstream::Done(cont) => ctx.reply_to(*cont, result),
            }
        }
    }
    fn name(&self) -> &'static str {
        "combiner"
    }
}

/// Factory for combiners created on remote nodes (init:
/// `[op, expected, parent_addr]`).
fn make_combiner(args: &[Value]) -> Box<dyn Behavior> {
    let op = Op::decode(args[0].as_int());
    Box::new(Combiner {
        op,
        expected: args[1].as_int() as usize,
        received: 0,
        acc: op.identity(),
        upstream: Upstream::Parent(args[2].as_addr()),
    })
}

/// Register the combiner behavior (once per program).
pub fn register(program: &mut crate::Program) -> BehaviorId {
    program.behavior("combiner", make_combiner)
}

/// Set up a partition-wide tree reduction: one combiner per node, each
/// expecting `local_contributions[n]` values on [`CONTRIBUTE`], folding
/// up the binomial tree rooted on this node; the final result answers
/// `done`. Returns the per-node combiner addresses (index = node id).
///
/// Nodes expecting zero contributions still participate as interior
/// tree nodes when they have children; pure leaves with nothing to
/// contribute still send the identity so counters stay simple.
pub fn tree_reduce(
    ctx: &mut Ctx<'_>,
    combiner: BehaviorId,
    op: Op,
    local_contributions: &[usize],
    done: ContRef,
) -> Vec<MailAddr> {
    let p = ctx.nodes();
    assert_eq!(local_contributions.len(), p);
    let root = ctx.node();
    // Create in rank order so each combiner's parent already exists.
    // Rank r lives on node (r + root) % p; parent rank = r & (r-1).
    let mut by_rank: Vec<MailAddr> = Vec::with_capacity(p);
    for rank in 0..p {
        let node = hal_am::bcast::absolute_id(rank, root, p);
        let children = hal_am::bcast::children_ranks(rank, p).len();
        // Every node contributes at least the identity, so expected =
        // local (min 1) + children.
        let expected = local_contributions[node as usize].max(1) + children;
        let addr = if rank == 0 {
            ctx.create_local(Box::new(Combiner {
                op,
                expected,
                received: 0,
                acc: op.identity(),
                upstream: Upstream::Done(done),
            }))
        } else {
            let parent_rank = rank & (rank - 1);
            let parent = by_rank[parent_rank];
            ctx.create_on(
                node,
                combiner,
                vec![
                    Value::Int(op.encode()),
                    Value::Int(expected as i64),
                    Value::Addr(parent),
                ],
            )
        };
        by_rank.push(addr);
    }
    // Re-index by node id and emit identity contributions for nodes
    // with no local values.
    let mut by_node = vec![by_rank[0]; p];
    for (rank, addr) in by_rank.iter().enumerate() {
        let node = hal_am::bcast::absolute_id(rank, root, p);
        by_node[node as usize] = *addr;
    }
    for (node, addr) in by_node.iter().enumerate() {
        if local_contributions[node] == 0 {
            ctx.send(*addr, CONTRIBUTE, vec![op.identity()]);
        }
    }
    by_node
}

/// Convenience: contribute a value to a combiner.
pub fn contribute(ctx: &mut Ctx<'_>, combiner: MailAddr, v: impl IntoValue) {
    ctx.send(combiner, CONTRIBUTE, vec![v.into_value()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn run_reduction(p: usize, per_node: usize, op: Op) -> Value {
        let mut program = Program::new();
        let combiner = register(&mut program);
        let report = crate::sim_run(MachineConfig::new(p), program, |ctx| {
            let jc = ctx.create_join(
                1,
                vec![],
                Box::new(|ctx, mut vals| {
                    ctx.report("reduced", vals.pop().unwrap());
                    ctx.stop();
                }),
            );
            let locals = vec![per_node; p];
            let combiners = tree_reduce(ctx, combiner, op, &locals, ctx.cont_slot(jc, 0));
            // Contribute node*10 + i from each node (via plain sends —
            // contributions normally come from worker actors).
            for (node, c) in combiners.iter().enumerate() {
                for i in 0..per_node {
                    contribute(ctx, *c, (node * 10 + i) as i64);
                }
            }
        });
        report.value("reduced").expect("reduction completed").clone()
    }

    #[test]
    fn sum_over_partition() {
        for p in [1usize, 2, 5, 8] {
            let expect: i64 = (0..p).flat_map(|n| (0..3).map(move |i| (n * 10 + i) as i64)).sum();
            assert_eq!(run_reduction(p, 3, Op::SumInt), Value::Int(expect), "p={p}");
        }
    }

    #[test]
    fn min_and_max() {
        assert_eq!(run_reduction(6, 2, Op::MaxInt), Value::Int(51));
        assert_eq!(run_reduction(6, 2, Op::MinInt), Value::Int(0));
    }

    #[test]
    fn nodes_without_contributions_participate() {
        let mut program = Program::new();
        let combiner = register(&mut program);
        let report = crate::sim_run(MachineConfig::new(4), program, |ctx| {
            let jc = ctx.create_join(
                1,
                vec![],
                Box::new(|ctx, mut vals| {
                    ctx.report("reduced", vals.pop().unwrap());
                    ctx.stop();
                }),
            );
            // Only node 2 contributes.
            let combiners =
                tree_reduce(ctx, combiner, Op::SumInt, &[0, 0, 1, 0], ctx.cont_slot(jc, 0));
            contribute(ctx, combiners[2], 99i64);
        });
        assert_eq!(report.value("reduced"), Some(&Value::Int(99)));
    }

    #[test]
    fn op_algebra() {
        assert_eq!(Op::SumInt.combine(&Value::Int(2), &Value::Int(3)), Value::Int(5));
        assert_eq!(
            Op::SumFloat.combine(&Value::Float(0.5), &Value::Float(0.25)),
            Value::Float(0.75)
        );
        assert_eq!(Op::MinInt.combine(&Op::MinInt.identity(), &Value::Int(7)), Value::Int(7));
        assert_eq!(Op::MaxInt.combine(&Op::MaxInt.identity(), &Value::Int(-7)), Value::Int(-7));
    }
}
