//! Helpers for local synchronization constraints (§6.1).
//!
//! HAL expresses synchronization as *disabling conditions* — per-object
//! predicates that make a method temporarily unprocessable; the kernel
//! parks disabled messages in the actor's pending queue and retries
//! after every method execution. The natural Rust form is the
//! [`hal_kernel::Behavior::enabled`] hook; this module provides small
//! reusable pieces for writing it.

use hal_kernel::Selector;

/// A selector-indexed enable/disable bitmask (selectors 0..64) —
/// the common "this method is closed until further notice" pattern.
///
/// ```
/// use hal::sync::Gates;
/// let mut g = Gates::all_enabled();
/// g.disable(3);
/// assert!(!g.is_enabled(3));
/// assert!(g.is_enabled(2));
/// g.enable(3);
/// assert!(g.is_enabled(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gates {
    disabled: u64,
}

impl Gates {
    /// Everything enabled.
    pub fn all_enabled() -> Self {
        Gates { disabled: 0 }
    }

    /// Everything disabled (open selectors one by one).
    pub fn all_disabled() -> Self {
        Gates { disabled: u64::MAX }
    }

    /// Disable a selector.
    ///
    /// # Panics
    /// Panics for selectors ≥ 64 (use a custom `enabled` impl there).
    pub fn disable(&mut self, selector: Selector) {
        assert!(selector < 64, "Gates covers selectors 0..64");
        self.disabled |= 1 << selector;
    }

    /// Enable a selector.
    pub fn enable(&mut self, selector: Selector) {
        assert!(selector < 64, "Gates covers selectors 0..64");
        self.disabled &= !(1 << selector);
    }

    /// Is the selector currently enabled?
    pub fn is_enabled(&self, selector: Selector) -> bool {
        selector >= 64 || self.disabled & (1 << selector) == 0
    }
}

impl Default for Gates {
    fn default() -> Self {
        Gates::all_enabled()
    }
}

/// A bounded-buffer style counter constraint: `put` disabled at
/// capacity, `get` disabled at zero — the canonical synchronization-
/// constraint example from the actor literature.
///
/// ```
/// use hal::sync::BoundedCounter;
/// let mut b = BoundedCounter::new(2);
/// assert!(b.may_put() && !b.may_get());
/// b.put();
/// b.put();
/// assert!(!b.may_put() && b.may_get());
/// b.get();
/// assert!(b.may_put());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BoundedCounter {
    count: usize,
    capacity: usize,
}

impl BoundedCounter {
    /// Empty counter with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        BoundedCounter { count: 0, capacity }
    }

    /// May a producer proceed?
    pub fn may_put(&self) -> bool {
        self.count < self.capacity
    }

    /// May a consumer proceed?
    pub fn may_get(&self) -> bool {
        self.count > 0
    }

    /// Record a put.
    ///
    /// # Panics
    /// Panics when full — callers must gate on `may_put` via `enabled`,
    /// so reaching here disabled is a constraint bug worth a loud stop.
    pub fn put(&mut self) {
        assert!(self.may_put(), "put while full");
        self.count += 1;
    }

    /// Record a get.
    pub fn get(&mut self) {
        assert!(self.may_get(), "get while empty");
        self.count -= 1;
    }

    /// Current fill level.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_toggle_independently() {
        let mut g = Gates::all_enabled();
        g.disable(0);
        g.disable(5);
        assert!(!g.is_enabled(0));
        assert!(g.is_enabled(1));
        assert!(!g.is_enabled(5));
        g.enable(0);
        assert!(g.is_enabled(0));
        assert!(!g.is_enabled(5));
    }

    #[test]
    fn gates_all_disabled_opens_one_by_one() {
        let mut g = Gates::all_disabled();
        assert!(!g.is_enabled(7));
        g.enable(7);
        assert!(g.is_enabled(7));
        assert!(!g.is_enabled(8));
    }

    #[test]
    fn high_selectors_default_enabled() {
        let g = Gates::all_disabled();
        assert!(g.is_enabled(64), "out-of-range selectors are not gated");
    }

    #[test]
    #[should_panic(expected = "0..64")]
    fn gates_reject_out_of_range_disable() {
        Gates::all_enabled().disable(64);
    }

    #[test]
    fn bounded_counter_lifecycle() {
        let mut b = BoundedCounter::new(1);
        assert!(b.is_empty());
        b.put();
        assert_eq!(b.len(), 1);
        assert!(!b.may_put());
        b.get();
        assert!(b.is_empty() && b.may_put());
    }

    #[test]
    #[should_panic(expected = "while empty")]
    fn bounded_counter_underflow_is_loud() {
        BoundedCounter::new(1).get();
    }
}
