//! Program assembly: behavior registration and machine construction.
//!
//! The HAL front-end loaded compiled executables into every kernel; a
//! [`Program`] is this reproduction's executable image — a set of
//! behavior factories with stable ids, installable into simulated or
//! threaded machines.

use hal_kernel::kernel::Ctx;
use hal_kernel::{
    run_threaded, BackendKind, BehaviorId, BehaviorRegistry, FactoryFn, Machine, MachineConfig,
    MachineError, SimMachine, SimReport, ThreadReport,
};
use std::sync::Arc;
use std::time::Duration;

/// A program: named behaviors with deterministic ids.
///
/// Ids are assigned in registration order, so the same registration
/// sequence yields the same ids on every node and across sim/thread
/// machines — exactly like loading one executable everywhere.
#[derive(Default)]
pub struct Program {
    registry: BehaviorRegistry,
    next_id: u32,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a behavior factory; returns its id for `create_on` /
    /// `grpnew` calls.
    pub fn behavior(&mut self, name: &'static str, factory: FactoryFn) -> BehaviorId {
        let id = BehaviorId(self.next_id);
        self.next_id += 1;
        self.registry.register(id, name, factory);
        id
    }

    /// The registry built so far — the protocol checker's static
    /// program pass (`hal-check::check_registry`) reads this before the
    /// program is consumed by a machine.
    pub fn registry(&self) -> &BehaviorRegistry {
        &self.registry
    }

    /// Freeze into a shareable registry.
    pub fn build(self) -> Arc<BehaviorRegistry> {
        Arc::new(self.registry)
    }
}

/// Build a machine for `cfg.backend`, bootstrap it on node 0, and run
/// it to completion — the backend-dispatching entry point every harness
/// should use. `BackendKind::Sim` takes exactly the [`try_sim_run`]
/// path (same construction sequence, byte-identical reports);
/// `BackendKind::Live` stages a [`hal_kernel::LiveMachine`], bootstraps
/// it before its node threads spawn, and drains with the default wall
/// budget.
///
/// # Panics
/// Panics on a [`MachineError`]; use [`try_run`] for the typed error.
pub fn run(
    cfg: MachineConfig,
    program: Program,
    bootstrap: impl FnOnce(&mut Ctx<'_>),
) -> SimReport {
    match try_run(cfg, program, bootstrap) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Backend-dispatching run with typed errors — see [`run`].
pub fn try_run(
    cfg: MachineConfig,
    program: Program,
    bootstrap: impl FnOnce(&mut Ctx<'_>),
) -> Result<SimReport, MachineError> {
    match cfg.backend {
        BackendKind::Sim => try_sim_run(cfg, program, bootstrap),
        BackendKind::Live => {
            let mut m = Machine::live(cfg, program.build());
            m.with_ctx(0, bootstrap);
            m.run()
        }
    }
}

/// Build a simulated machine and bootstrap it in one call.
///
/// # Panics
/// Panics on a [`MachineError`] (livelock valve, bad node id, unknown
/// behavior). Harness code that wants the typed error should use
/// [`try_sim_run`].
pub fn sim_run(
    cfg: MachineConfig,
    program: Program,
    bootstrap: impl FnOnce(&mut Ctx<'_>),
) -> SimReport {
    match try_sim_run(cfg, program, bootstrap) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Build a simulated machine and bootstrap it, surfacing machine
/// failures as typed [`MachineError`] values.
pub fn try_sim_run(
    cfg: MachineConfig,
    program: Program,
    bootstrap: impl FnOnce(&mut Ctx<'_>),
) -> Result<SimReport, MachineError> {
    let mut m = SimMachine::new(cfg, program.build());
    m.with_ctx(0, bootstrap);
    m.run()
}

/// Build a threaded machine and run it to completion (or `timeout`).
pub fn thread_run(
    cfg: MachineConfig,
    program: Program,
    timeout: Duration,
    bootstrap: impl FnOnce(&mut Ctx<'_>) + Send,
) -> ThreadReport {
    run_threaded(cfg, program.build(), timeout, bootstrap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hal_kernel::{Behavior, Msg, Value};

    struct Nop;
    impl Behavior for Nop {
        fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
    }
    fn make_nop(_: &[Value]) -> Box<dyn Behavior> {
        Box::new(Nop)
    }

    #[test]
    fn ids_assigned_in_order() {
        let mut p = Program::new();
        let a = p.behavior("a", make_nop);
        let b = p.behavior("b", make_nop);
        assert_eq!(a, BehaviorId(0));
        assert_eq!(b, BehaviorId(1));
        let reg = p.build();
        assert_eq!(reg.name(a), Some("a"));
        assert_eq!(reg.name(b), Some("b"));
    }

    #[test]
    fn sim_run_bootstraps_and_drains() {
        struct Reporter;
        impl Behavior for Reporter {
            fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.report("done", Value::Int(1));
            }
        }
        let p = Program::new();
        let r = sim_run(MachineConfig::new(1), p, |ctx| {
            let a = ctx.create_local(Box::new(Reporter));
            ctx.send(a, 0, vec![]);
        });
        assert_eq!(r.value("done"), Some(&Value::Int(1)));
    }
}
