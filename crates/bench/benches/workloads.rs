//! Benchmarks of whole simulated workloads: how fast the discrete-event
//! reproduction itself runs on the host (simulator throughput), and the
//! wall-clock of the comparison baselines — on the in-tree
//! [`hal_bench::harness`].

use hal::MachineConfig;
use hal_baselines::{fib, gemm, parallel_fib};
use hal_bench::harness::Harness;
use hal_workloads::cholesky::{self, CholeskyConfig, Variant};
use hal_workloads::fib::{self as fib_wl, FibConfig, Placement};
use hal_workloads::matmul::{self, MatmulConfig};
use std::hint::black_box;

fn bench_sim_throughput(c: &mut Harness) {
    let mut g = c.group("sim_workloads");
    g.sample_size(10);
    g.bench_function("fib20_grain8_p4_lb", |b| {
        b.iter(|| {
            let (v, _) = fib_wl::run_sim(
                MachineConfig::builder(4).load_balancing(true).build().unwrap(),
                FibConfig {
                    n: 20,
                    grain: 8,
                    placement: Placement::Local,
                },
            );
            black_box(v)
        });
    });
    g.bench_function("cholesky_bp_n48_p4", |b| {
        b.iter(|| {
            let (fro, _) = cholesky::run_sim(
                MachineConfig::new(4),
                CholeskyConfig {
                    n: 48,
                    variant: Variant::BP,
                    per_flop_ns: 100,
                    seed: 3,
                },
                false,
            );
            black_box(fro)
        });
    });
    g.bench_function("matmul_g4_b16_p16", |b| {
        b.iter(|| {
            let (fro, _) = matmul::run_sim(
                MachineConfig::new(16),
                MatmulConfig {
                    grid: 4,
                    block: 16,
                    per_flop_ns: 100,
                    seed_a: 1,
                    seed_b: 2,
                },
                false,
            );
            black_box(fro)
        });
    });
    g.finish();
}

fn bench_baselines(c: &mut Harness) {
    let mut g = c.group("baselines");
    g.bench_function("fib25_sequential", |b| {
        b.iter(|| black_box(fib(black_box(25))));
    });
    g.sample_size(10);
    g.bench_function("fib25_stealpool_1thread", |b| {
        b.iter(|| black_box(parallel_fib(black_box(25), 1, 12)));
    });
    g.bench_function("gemm_ikj_128", |b| {
        let n = 128;
        let a = gemm::random_matrix(n, 1);
        let bm = gemm::random_matrix(n, 2);
        let mut cm = vec![0.0; n * n];
        b.iter(|| {
            cm.fill(0.0);
            gemm::matmul_ikj_acc(&a, &bm, &mut cm, n);
            black_box(cm[0])
        });
    });
    g.finish();
}

fn bench_extensions(c: &mut Harness) {
    let mut g = c.group("extensions");
    g.sample_size(10);
    // Distributed GC over a 4-node machine with 400 garbage actors.
    g.bench_function("gc_collect_400_garbage_p4", |b| {
        use hal::prelude::*;
        struct Nop;
        impl Behavior for Nop {
            fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
        }
        b.iter(|| {
            let mut m = hal::SimMachine::new(
                MachineConfig::new(4),
                hal::Program::new().build(),
            );
            m.with_ctx(0, |ctx| {
                for _ in 0..400 {
                    ctx.create_local(Box::new(Nop));
                }
            });
            m.run().unwrap();
            let r = m.collect_garbage().unwrap();
            assert_eq!(r.freed, 400);
            black_box(r.rounds)
        });
    });
    // Tree reduction across 16 nodes.
    g.bench_function("tree_reduce_p16", |b| {
        use hal::collectives::{self, Op};
        use hal::prelude::*;
        b.iter(|| {
            let mut program = Program::new();
            let combiner = collectives::register(&mut program);
            let report = hal::sim_run(MachineConfig::new(16), program, |ctx| {
                let jc = ctx.create_join(
                    1,
                    vec![],
                    Box::new(|ctx, mut vals| {
                        ctx.report("r", vals.pop().unwrap());
                        ctx.stop();
                    }),
                );
                let locals = vec![1usize; 16];
                let cs = collectives::tree_reduce(
                    ctx,
                    combiner,
                    Op::SumInt,
                    &locals,
                    ctx.cont_slot(jc, 0),
                );
                for (n, c) in cs.iter().enumerate() {
                    collectives::contribute(ctx, *c, n as i64);
                }
            });
            black_box(report.value("r").cloned())
        });
    });
    // UTS with load balancing (simulator throughput on irregular work).
    g.bench_function("uts_lb_p8", |b| {
        use hal::MachineConfig;
        use hal_workloads::uts::{run_sim, UtsConfig};
        let cfg = UtsConfig {
            seed: 3,
            root_children: 16,
            m: 3,
            q_fp: (0.28f64 * 4294967296.0) as u32,
            max_depth: 30,
            node_cost_ns: 5_000,
        };
        b.iter(|| {
            let (size, _) = run_sim(MachineConfig::builder(8).load_balancing(true).build().unwrap(), cfg);
            black_box(size)
        });
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_sim_throughput(&mut h);
    bench_baselines(&mut h);
    bench_extensions(&mut h);
}
