//! Micro-benchmarks: real host-nanosecond costs of the runtime
//! primitives (complementing the simulated-µs Table 2), on the in-tree
//! [`hal_bench::harness`].
//!
//! These answer "how expensive are the data-structure operations the
//! kernel performs per primitive on a modern machine" — name-server
//! resolution (fast path vs hash), join-continuation fill, descriptor
//! allocation, broadcast-tree computation, event-queue churn, and the
//! end-to-end local send / fast-path dispatch through a live machine.

use hal::prelude::*;
use hal_am::bcast;
use hal_bench::harness::Harness;
use hal_des::{EventQueue, VirtualTime};
use hal_kernel::name_server::NameServer;
use hal_kernel::{ActorId, AddrKey, DescriptorId, SimMachine};
use std::hint::black_box;

struct Sink;
impl Behavior for Sink {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
}

fn bench_name_server(c: &mut Harness) {
    let mut g = c.group("name_server");
    g.bench_function("resolve_birthplace_fast_path", |b| {
        let mut ns = NameServer::new(0);
        let d = ns.alloc_local(ActorId(0), 0);
        let key = AddrKey {
            birthplace: 0,
            index: d,
        };
        b.iter(|| black_box(ns.resolve(black_box(key))));
    });
    g.bench_function("resolve_foreign_hash_lookup", |b| {
        let mut ns = NameServer::new(0);
        // Populate with a realistic number of foreign entries.
        for i in 0..10_000u32 {
            let d = ns.alloc_remote((i % 16 + 1) as u16, None, 0);
            ns.bind(
                AddrKey {
                    birthplace: (i % 16 + 1) as u16,
                    index: DescriptorId(i),
                },
                d,
            );
        }
        let key = AddrKey {
            birthplace: 5,
            index: DescriptorId(4_444),
        };
        b.iter(|| black_box(ns.resolve(black_box(key))));
    });
    g.finish();
}

fn bench_machine_paths(c: &mut Harness) {
    let mut g = c.group("send_paths");
    g.bench_function("local_send_generic_enqueue_dispatch", |b| {
        let mut m = SimMachine::new(MachineConfig::new(1), Program::new().build());
        let sink = m.with_ctx(0, |ctx| ctx.create_local(Box::new(Sink)));
        b.iter(|| {
            m.with_ctx(0, |ctx| ctx.send(sink, 0, vec![]));
            m.run().unwrap();
        });
    });
    g.bench_function("local_send_fast_path_inline", |b| {
        let mut m = SimMachine::new(MachineConfig::new(1), Program::new().build());
        let sink = m.with_ctx(0, |ctx| ctx.create_local(Box::new(Sink)));
        b.iter(|| {
            m.with_ctx(0, |ctx| black_box(ctx.send_fast(sink, 0, vec![])));
        });
    });
    g.bench_function("remote_send_one_hop", |b| {
        let mut m = SimMachine::new(MachineConfig::new(2), Program::new().build());
        let sink = m.with_ctx(1, |ctx| ctx.create_local(Box::new(Sink)));
        b.iter(|| {
            m.with_ctx(0, |ctx| ctx.send(sink, 0, vec![]));
            m.run().unwrap();
        });
    });
    g.finish();
}

fn bench_join(c: &mut Harness) {
    c.bench_function("join_create_fill_fire", |b| {
        let mut m = SimMachine::new(MachineConfig::new(1), Program::new().build());
        b.iter(|| {
            m.with_ctx(0, |ctx| {
                let jc = ctx.create_join(2, vec![], Box::new(|_, v| {
                    black_box(v);
                }));
                ctx.reply_to(ctx.cont_slot(jc, 0), Value::Int(1));
                ctx.reply_to(ctx.cont_slot(jc, 1), Value::Int(2));
            });
        });
    });
}

fn bench_bcast_schedule(c: &mut Harness) {
    let mut g = c.group("bcast_tree");
    for p in [16usize, 256, 4096] {
        g.bench_function(format!("children_all_nodes_p{p}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for id in 0..p as u16 {
                    total += bcast::children(id, 3 % p as u16, p).len();
                }
                black_box(total)
            });
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Harness) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter_batched(EventQueue::<u64>::new, |mut q| {
            for i in 0..1_000u64 {
                q.push(VirtualTime::from_nanos(i * 37 % 1000), i);
            }
            let mut acc = 0;
            while let Some((_, v)) = q.pop() {
                acc += v;
            }
            black_box(acc)
        });
    });
}

fn bench_creation(c: &mut Harness) {
    let mut g = c.group("creation");
    g.bench_function("local_create", |b| {
        let mut m = SimMachine::new(MachineConfig::new(1), Program::new().build());
        b.iter(|| {
            m.with_ctx(0, |ctx| black_box(ctx.create_local(Box::new(Sink))));
        });
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_name_server(&mut h);
    bench_machine_paths(&mut h);
    bench_join(&mut h);
    bench_bcast_schedule(&mut h);
    bench_event_queue(&mut h);
    bench_creation(&mut h);
}
