//! Table 5 reproduction: systolic matrix multiplication times and
//! MFLOPS on the simulated CM-5.
//!
//! Paper: 1024×1024 matrices on a √P×√P processor array, local
//! synchronization only; "the performance peaks at 434 MFlops for
//! 1024 by 1024 matrix on 64 node partition of the CM-5."

use hal::MachineConfig;
use hal_bench::{banner, cell, header, out, row, secs};
use hal_workloads::matmul::{run_sim, MatmulConfig};

fn main() {
    out::note_tags("matmul", hal_workloads::matmul::MmMsg::TAGS);
    banner(
        "Table 5: systolic matrix multiplication (virtual seconds / MFLOPS)",
        "Cannon's algorithm, one block actor per grid cell, block = n / sqrt(P);\n\
         per-node kernel calibrated to the CM-5's ~7 MFLOPS sustained.",
    );
    let widths = [6usize, 4, 7, 12, 10];
    header(&["n", "P", "block", "time (s)", "MFLOPS"], &widths);
    let mut peak = 0.0f64;
    let sizes: &[usize] = if out::quick() {
        &[256]
    } else {
        &[256, 512, 1024]
    };
    for &n in sizes {
        for &grid in &[2usize, 4, 8] {
            let p = grid * grid;
            if n / grid < 16 {
                continue;
            }
            let cfg = MatmulConfig {
                grid,
                block: n / grid,
                per_flop_ns: 135,
                seed_a: 7,
                seed_b: 8,
            };
            let machine = MachineConfig::builder(p)
                .seed(99)
                .observe(out::observe_opts())
                .backend(out::backend())
                .parallelism(out::parallelism()).build().unwrap();
            let label = format!("matmul n={n} p={p}");
            let (_fro, report) = out::timed(label, || run_sim(machine, cfg, false));
            let t = report.makespan.as_secs_f64();
            let flops = 2.0 * (n as f64).powi(3);
            let mflops = flops / t / 1e6;
            peak = peak.max(mflops);
            row(
                &[cell(n), cell(p), cell(n / grid), secs(t), format!("{mflops:.0}")],
                &widths,
            );
        }
    }
    println!(
        "\npeak = {peak:.0} MFLOPS (paper: 434 MFLOPS at n=1024, P=64).\n\
         shape: MFLOPS grow with P and with n (bigger blocks amortize\n\
         communication), peaking at the largest configuration."
    );
    out::finish("table5_matmul");
}
