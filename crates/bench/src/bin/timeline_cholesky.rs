//! Visualizing *why* local synchronization wins: per-node utilization
//! timelines for the Table 1 Cholesky variants.
//!
//! BP (pipelined, local sync) keeps every node busy — iteration i+1's
//! cmods overlap iteration i's tail. Seq (global sync) shows the
//! staircase of idle nodes waiting for each iteration's barrier.

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_bench::{banner, out};
use hal_kernel::timeline::render_ascii;
use hal_workloads::cholesky::{self, CholeskyConfig, Variant};

fn show(variant: Variant) {
    let p = 8;
    let cfg = CholeskyConfig {
        n: 64,
        variant,
        per_flop_ns: 140,
        seed: 77,
    };
    let mut program = Program::new();
    let id = cholesky::register(&mut program);
    let mut m = SimMachine::new(
        MachineConfig::builder(p)
            .seed(9)
            .timeline()
            .observe(out::observe_opts())
            .parallelism(out::parallelism()).build().unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| cholesky::bootstrap(ctx, id, cfg, false));
    let t0 = std::time::Instant::now();
    let report = m.run().unwrap();
    out::note_run(format!("timeline cholesky {variant:?}"), &report, t0.elapsed());
    println!(
        "-- {variant:?}: {} --",
        report.makespan
    );
    print!("{}", render_ascii(m.timeline(), p, report.makespan, 72));
    let utils = m.timeline().utilization(p, report.makespan);
    let mean = utils.iter().sum::<f64>() / p as f64;
    println!("mean utilization {:.1}%\n", mean * 100.0);
}

fn main() {
    banner(
        "Timelines: Cholesky n=64 on 8 nodes ('#' busy, '+' partial, '.' idle)",
        "the overlap argument behind Table 1, made visible",
    );
    show(Variant::BP);
    show(Variant::Bcast);
    show(Variant::Seq);
    println!(
        "shape: the pipelined variant fills the chart; the globally\n\
         synchronized ones leave idle stripes between iterations."
    );
    out::finish("timeline_cholesky");
}
