//! Extension experiment: unbalanced tree search under dynamic load
//! balancing — quantifying the paper's introductory claim that location
//! transparency + migration are "essential for scalable execution of
//! dynamic, irregular applications".
//!
//! Unlike fib, UTS subtree sizes are heavy-tailed and unpredictable:
//! static placement cannot help, so the runtime's receiver-initiated
//! random polling is the only source of parallelism.

use hal::MachineConfig;
use hal_bench::{banner, cell, header, out, row};
use hal_workloads::uts::{run_sim, sequential_size, UtsConfig};

fn main() {
    out::note_tags("uts", hal_workloads::uts::UtsMsg::TAGS);
    banner(
        "Extension: unbalanced tree search (UTS), virtual ms",
        "all actors created locally; only \u{a7}7.2 random polling distributes the tree",
    );
    let widths = [6usize, 8, 4, 12, 12, 9, 9];
    header(
        &["seed", "nodes", "P", "noLB (ms)", "LB (ms)", "steals", "speedup"],
        &widths,
    );
    let seeds: &[u64] = if out::quick() { &[11] } else { &[11, 23] };
    for &seed in seeds {
        let cfg = UtsConfig::standard(seed);
        let size = sequential_size(&cfg);
        for &p in &[1usize, 4, 16, 64] {
            let (s0, r0) = out::timed(format!("uts seed={seed} p={p} noLB"), || {
                run_sim(
                    MachineConfig::builder(p)
                        .seed(1)
                        .observe(out::observe_opts())
                        .backend(out::backend())
                        .parallelism(out::parallelism()).build().unwrap(),
                    cfg,
                )
            });
            assert_eq!(s0, size);
            let nolb_ns = r0.makespan.as_nanos();
            let (lb_ns, steals) = if p > 1 {
                let (s1, r1) = out::timed(format!("uts seed={seed} p={p} LB"), || {
                    run_sim(
                        MachineConfig::builder(p)
                            .seed(1)
                            .load_balancing(true)
                            .observe(out::observe_opts())
                            .backend(out::backend())
                            .parallelism(out::parallelism()).build().unwrap(),
                        cfg,
                    )
                });
                assert_eq!(s1, size);
                (r1.makespan.as_nanos(), r1.stats.get("steal.granted"))
            } else {
                (nolb_ns, 0)
            };
            row(
                &[
                    cell(seed),
                    cell(size),
                    cell(p),
                    format!("{:.2}", nolb_ns as f64 / 1e6),
                    format!("{:.2}", lb_ns as f64 / 1e6),
                    cell(steals),
                    format!("{:.1}x", nolb_ns as f64 / lb_ns as f64),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape: without balancing the tree never leaves node 0 (speedup 1.0 at\n\
         every P); with it, speedup tracks P until the tree's parallelism or\n\
         steal latency saturates — the paper's motivating scenario."
    );
    out::finish("irregular_uts");
}
