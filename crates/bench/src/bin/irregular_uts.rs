//! Extension experiment: unbalanced tree search under dynamic load
//! balancing — quantifying the paper's introductory claim that location
//! transparency + migration are "essential for scalable execution of
//! dynamic, irregular applications".
//!
//! Unlike fib, UTS subtree sizes are heavy-tailed and unpredictable:
//! static placement cannot help, so the runtime's receiver-initiated
//! random polling is the only source of parallelism.

use hal::MachineConfig;
use hal_bench::{banner, cell, header, row};
use hal_workloads::uts::{run_sim, sequential_size, UtsConfig};

fn main() {
    banner(
        "Extension: unbalanced tree search (UTS), virtual ms",
        "all actors created locally; only \u{a7}7.2 random polling distributes the tree",
    );
    let widths = [6usize, 8, 4, 12, 12, 9, 9];
    header(
        &["seed", "nodes", "P", "noLB (ms)", "LB (ms)", "steals", "speedup"],
        &widths,
    );
    for seed in [11u64, 23] {
        let cfg = UtsConfig::standard(seed);
        let size = sequential_size(&cfg);
        for &p in &[1usize, 4, 16, 64] {
            let (s0, r0) = run_sim(MachineConfig::new(p).with_seed(1), cfg);
            assert_eq!(s0, size);
            let (s1, r1) = if p > 1 {
                let out = run_sim(
                    MachineConfig::new(p).with_seed(1).with_load_balancing(true),
                    cfg,
                );
                (out.0, out.1)
            } else {
                (s0, r0)
            };
            assert_eq!(s1, size);
            // `r0` consumed above when p == 1; recompute cleanly.
            let (_, r0) = run_sim(MachineConfig::new(p).with_seed(1), cfg);
            row(
                &[
                    cell(seed),
                    cell(size),
                    cell(p),
                    format!("{:.2}", r0.makespan.as_secs_f64() * 1e3),
                    format!("{:.2}", r1.makespan.as_secs_f64() * 1e3),
                    cell(r1.stats.get("steal.granted")),
                    format!("{:.1}x", r0.makespan.as_nanos() as f64 / r1.makespan.as_nanos() as f64),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape: without balancing the tree never leaves node 0 (speedup 1.0 at\n\
         every P); with it, speedup tracks P until the tree's parallelism or\n\
         steal latency saturates — the paper's motivating scenario."
    );
}
