//! Chaos harness: exactly-once delivery under seeded link faults.
//!
//! The migration-chase workload from `fig3_delivery` runs again, but
//! with the fault plan live: every link drops, duplicates, and reorders
//! packets with probability `rate`, and the reliable-delivery layer
//! (per-link sequence numbers, cumulative acks, timeout retransmit —
//! DESIGN.md §"Fault injection & reliable delivery") must still deliver
//! every racing probe exactly once to an actor that keeps migrating out
//! from under them. Columns show what the reliability layer paid:
//! retransmissions, duplicates suppressed at the receiver, and raw
//! packets the fault layer ate.
//!
//! Faults are decided inside the DES from the master seed, so a given
//! `(seed, rate)` run is fully reproducible and bit-identical across
//! `--parallel` levels — `ci.sh` diffs sequential vs parallel stdout.

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_bench::{banner, cell, header, out, row};

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

struct ChaosRun {
    delivered: u64,
    retransmits: u64,
    dup_suppressed: u64,
    dropped: u64,
    duplicated: u64,
    fir_reissued: u64,
}

fn run(rate: f64, chain: usize, probes: i64) -> ChaosRun {
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", make_spray);
    let cfg = MachineConfig::builder(p)
        .seed(5)
        .faults(FaultPlan::chaos(rate))
        .observe(out::observe_opts())
        .parallelism(out::parallelism())
        .build()
        .unwrap();
    let mut m = SimMachine::new(cfg, program.build());
    m.with_ctx(0, |ctx| {
        let hops: Vec<u16> = (0..chain).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(probes)]);
        ctx.send(s, 0, vec![]);
    });
    let t0 = std::time::Instant::now();
    let r = m.run().unwrap();
    let c = ChaosRun {
        delivered: r.values("probe_delivered").len() as u64,
        retransmits: r.stats.get("rel.retransmits"),
        dup_suppressed: r.stats.get("rel.dup_dropped"),
        dropped: r.stats.get("net.fault_dropped"),
        duplicated: r.stats.get("net.fault_duplicated"),
        fir_reissued: r.stats.get("fir.reissued"),
    };
    out::note_run_with(
        format!("chaos rate={rate}"),
        &r,
        t0.elapsed(),
        &[
            ("delivered", c.delivered),
            ("retransmits", c.retransmits),
            ("duplicates_suppressed", c.dup_suppressed),
            ("link_dropped", c.dropped),
            ("link_duplicated", c.duplicated),
            ("fir_reissued", c.fir_reissued),
        ],
    );
    c
}

fn main() {
    banner(
        "Chaos: exactly-once delivery under seeded link faults (8 nodes)",
        "Every link drops/duplicates/reorders packets at the given rate\n\
         while 40 probes chase an actor through an 8-hop migration walk.\n\
         The reliable layer retransmits on timeout and suppresses\n\
         duplicates by per-link sequence number; delivery stays exactly\n\
         once at every rate.",
    );
    let widths = [7usize, 11, 9, 12, 9, 9, 9];
    header(
        &["rate", "delivered", "retx", "dup-suppr", "dropped", "dup'd", "FIR-rtx"],
        &widths,
    );
    let rates: &[f64] = if out::quick() {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.01, 0.05, 0.10, 0.20]
    };
    let probes = 40i64;
    for &rate in rates {
        let c = run(rate, 8, probes);
        assert_eq!(
            c.delivered, probes as u64,
            "exactly-once delivery violated at fault rate {rate}"
        );
        row(
            &[
                format!("{rate:.2}"),
                cell(c.delivered),
                cell(c.retransmits),
                cell(c.dup_suppressed),
                cell(c.dropped),
                cell(c.duplicated),
                cell(c.fir_reissued),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: the fault-free row pays zero overhead (the fault layer is\n\
         compiled out of the hot path when the plan is empty); as the rate\n\
         climbs, retransmissions and suppressed duplicates grow while the\n\
         delivered count never moves."
    );
    out::finish("chaos_delivery");
}
