//! Figure 3 reproduction: the message send & delivery algorithm under
//! migration.
//!
//! Fig. 3 is the flowchart of §4's generic send — locality check from
//! local information, best-guess routing, FIR chases along forward
//! chains, duplicate-FIR suppression, and table repair along the chain.
//! This harness exercises that machinery quantitatively: a nomad actor
//! walks k hops while probes race it, and we report how many FIRs,
//! forwards, and parked messages each chain length costs, plus the
//! effect of the birthplace cache once gossip settles.

use hal::prelude::*;
use hal_kernel::{SimMachine, TraceReport};
use hal_bench::{banner, cell, header, out, row};

struct Nomad {
    hops: Vec<u16>,
    probes: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if let Some(next) = self.hops.pop() {
                    let me = ctx.me();
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                self.probes += 1;
                ctx.report("probe_delivered", Value::Int(self.probes));
            }
            _ => unreachable!(),
        }
    }
}

struct Spray {
    target: MailAddr,
    n: i64,
}
impl Behavior for Spray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for _ in 0..self.n {
            ctx.send(self.target, 1, vec![]);
        }
    }
}

fn make_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
    })
}

fn run(chain: usize, probes: i64) -> (u64, u64, u64, u64, u64, Option<TraceReport>) {
    let p = 8usize;
    let mut program = Program::new();
    let spray = program.behavior("spray", make_spray);
    let mut m = SimMachine::new(
        MachineConfig::builder(p)
            .seed(5)
            .observe(out::observe_opts().trace(true))
            .parallelism(out::parallelism()).build().unwrap(),
        program.build(),
    );
    m.with_ctx(0, |ctx| {
        // Walk `chain` hops around the ring 1,2,3,... (avoiding repeats
        // until necessary).
        let hops: Vec<u16> = (0..chain).rev().map(|i| ((i % (p - 1)) + 1) as u16).collect();
        let nomad = ctx.create_local(Box::new(Nomad { hops, probes: 0 }));
        ctx.send(nomad, 0, vec![]);
        // Prober on another node races the walk.
        let s = ctx.create_on(4, spray, vec![Value::Addr(nomad), Value::Int(probes)]);
        ctx.send(s, 0, vec![]);
    });
    let t0 = std::time::Instant::now();
    let r = m.run().unwrap();
    out::note_run(format!("fig3 chain={chain} probes={probes}"), &r, t0.elapsed());
    let delivered = r.values("probe_delivered").len() as u64;
    (
        delivered,
        r.stats.get("fir.sent"),
        r.stats.get("fir.suppressed"),
        r.stats.get("deliver.forwarded"),
        r.stats.get("net.packets"),
        r.trace,
    )
}

fn main() {
    banner(
        "Figure 3: message delivery under migration (8 nodes, 20 racing probes)",
        "FIRs chase migrated actors along forward chains; duplicates are\n\
         suppressed; confirmed locations forward directly; every probe is\n\
         delivered exactly once.",
    );
    let widths = [7usize, 11, 9, 11, 10, 9];
    header(
        &["hops", "delivered", "FIRs", "suppressed", "forwards", "packets"],
        &widths,
    );
    let mut deepest_trace: Option<TraceReport> = None;
    let chains: &[usize] = if out::quick() {
        &[0, 2, 8]
    } else {
        &[0, 1, 2, 4, 8, 16]
    };
    for &chain in chains {
        let (delivered, firs, supp, fwd, pkts, trace) = run(chain, 20);
        assert_eq!(delivered, 20, "exactly-once delivery violated");
        deepest_trace = trace; // keep the longest-chain run's recording
        row(
            &[
                cell(chain),
                cell(delivered),
                cell(firs),
                cell(supp),
                cell(fwd),
                cell(pkts),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: chase work (FIRs + forwards) grows with chain length while\n\
         every message is still delivered exactly once; suppression keeps\n\
         the FIR count well below the probe count."
    );

    // Flight-recorder export for the deepest chase.
    let trace = deepest_trace.expect("tracing was enabled");
    println!(
        "\nflight recorder ({}-hop run):\n{}",
        chains.last().expect("non-empty chain list"),
        trace.summary()
    );
    let path = "results/fig3_delivery_trace.json";
    if let Err(e) = trace.write_chrome(path) {
        eprintln!("fig3_delivery: trace export to {path} failed: {e}");
        std::process::exit(1);
    }
    println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    out::finish("fig3_delivery");
}
