//! Run every reproduction harness in sequence — the one-command
//! regeneration of the paper's evaluation plus the extension
//! experiments. Each harness also exists as its own binary; this driver
//! just invokes their entry logic via `cargo run` so the committed
//! `results/` files can be refreshed in one go:
//!
//! ```bash
//! cargo run --release -p hal-bench --bin repro_all
//! ```

use std::process::Command;

const BINS: &[&str] = &[
    "table1_cholesky",
    "table2_primitives",
    "table3_invocation",
    "table4_fib",
    "table5_matmul",
    "fig3_delivery",
    "ablations",
    "irregular_uts",
    "now_cluster",
    "timeline_cholesky",
];

fn main() {
    std::fs::create_dir_all("results").expect("create results/");
    for bin in BINS {
        eprintln!("== running {bin} ==");
        let out = Command::new(env!("CARGO"))
            .args(["run", "--release", "-p", "hal-bench", "--bin", bin])
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &out.stdout).expect("write results file");
        eprintln!("   -> {path} ({} bytes)", out.stdout.len());
    }
    eprintln!("all harnesses completed; see results/");
}
