//! Run every reproduction harness in sequence — the one-command
//! regeneration of the paper's evaluation plus the extension
//! experiments — and measure what the parallel windowed executor buys.
//!
//! Each bin is run **twice**: once sequentially (`HAL_PARALLEL=1`, the
//! reference executor) and once on all host cores (`HAL_PARALLEL=auto`,
//! the windowed executor). The sequential stdout is committed to
//! `results/<bin>.txt`; the two stdouts are asserted byte-identical
//! (simulation results do not depend on host parallelism), and the
//! wall-clock totals from both runs are combined into a
//! sequential-vs-parallel speedup table written to
//! `results/BENCH_repro_all.json`.
//!
//! With `--check`, every bin additionally runs the `hal-check` protocol
//! invariant checker over its simulations (a bin that finds violations
//! exits nonzero and fails the whole sweep), the parallel pass is pinned
//! to a host-derived K (`available_parallelism().clamp(2, 7)`) so the
//! checker covers K in {1, K}, and the per-bin
//! `results/CHECK_<bin>.json` verdicts are folded into
//! `results/CHECK_repro_all.json`.
//!
//! With `--spans` / `--metrics`, every bin also exports lifecycle spans
//! with critical-path analysis (`results/SPANS_<bin>.json`) and the live
//! metrics timeseries (`results/METRICS_<bin>.json`). Both artifacts
//! carry only virtual-time facts, so the parallel pass is pinned to the
//! same host-derived K and each file is asserted **byte-identical**
//! between the K=1 and pinned-K runs.
//!
//! With `--prof`, every bin also records the host-time executor profile
//! (`results/PROF_<bin>.json` + `_hosttrace.json`). Those carry *host*
//! facts — they are exempt from the byte-identity assertions and each
//! leg overwrites them, so the surviving files describe the parallel
//! leg.
//!
//! Artifact hygiene: stale derived files (`*_trace.json`, `SPANS_*`,
//! `METRICS_*`, `CHECK_*`) are deleted before the sweep, and
//! `results/MANIFEST_repro_all.json` records every artifact this sweep
//! was expected to (and did) regenerate — a file in `results/` but not
//! in the manifest is leftover from an older tree.
//!
//! ```bash
//! cargo run --release -p hal-bench --bin repro_all            # full
//! cargo run --release -p hal-bench --bin repro_all -- --quick # smoke
//! cargo run --release -p hal-bench --bin repro_all -- --check # + checker
//! cargo run --release -p hal-bench --bin repro_all -- --spans --metrics
//! ```

use hal_bench::out;
use std::process::Command;

const BINS: &[&str] = &[
    "table1_cholesky",
    "table2_primitives",
    "table3_invocation",
    "table4_fib",
    "table5_matmul",
    "fig3_delivery",
    "chaos_delivery",
    "ablations",
    "irregular_uts",
    "now_cluster",
    "timeline_cholesky",
];

/// Bins whose stdout embeds host wall-clock measurements, which
/// legitimately differ between the two runs. Everything else must be
/// byte-identical across parallelism levels.
const HOST_TIMED_STDOUT: &[&str] = &["table3_invocation"];

/// Bins that always export a Chrome trace to `results/<bin>_trace.json`.
const TRACE_EXPORTS: &[&str] = &["fig3_delivery", "ablations", "table3_invocation"];

struct BinResult {
    bin: &'static str,
    seq_wall_ms: f64,
    par_wall_ms: f64,
    /// Per-run label → (sequential wall ms, parallel wall ms).
    runs: Vec<(String, f64, f64)>,
}

/// Pull `wall_ms=` out of the `BENCHTOTAL <bin> ...` stderr line.
fn parse_total_ms(stderr: &str, bin: &str) -> f64 {
    let prefix = format!("BENCHTOTAL {bin} ");
    stderr
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .and_then(|rest| {
            rest.split_whitespace()
                .find_map(|t| t.strip_prefix("wall_ms="))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// Parse every `BENCHLINE <label> virtual_ms=... wall_ms=...` stderr
/// line into (label, wall_ms). Labels may contain spaces; the four
/// trailing tokens are the key=value fields.
fn parse_benchlines(stderr: &str) -> Vec<(String, f64)> {
    let mut v = Vec::new();
    for line in stderr.lines() {
        let Some(rest) = line.strip_prefix("BENCHLINE ") else {
            continue;
        };
        let toks: Vec<&str> = rest.split_whitespace().collect();
        if toks.len() < 5 {
            continue;
        }
        let (label_toks, kv) = toks.split_at(toks.len() - 4);
        let wall_ms = kv
            .iter()
            .find_map(|t| t.strip_prefix("wall_ms="))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0);
        v.push((label_toks.join(" "), wall_ms));
    }
    v
}

fn run_bin(bin: &str, parallel: &str, quick: bool, check: bool, force: bool) -> std::process::Output {
    let spans = out::spans_enabled();
    let metrics = out::metrics_enabled();
    let prof = out::prof_enabled();
    // Prefer the sibling executable next to this one: it lets CI run
    // the whole sweep from a scratch directory (results/ under that
    // directory, committed files untouched). Fall back to cargo for
    // ad-hoc source-tree runs where the bins may not be built yet.
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(bin)))
        .filter(|p| p.is_file());
    let mut cmd = match sibling {
        Some(exe) => Command::new(exe),
        None => {
            let mut c = Command::new(env!("CARGO"));
            c.args(["run", "--release", "-p", "hal-bench", "--bin", bin, "--"]);
            c
        }
    };
    if quick {
        cmd.arg("--quick");
    }
    cmd.env("HAL_PARALLEL", parallel);
    if force {
        // A pinned K may exceed the visible cores (at least 2 shards
        // even on 1-core CI); tell the child to run it anyway instead
        // of capping at the host width.
        cmd.env("HAL_PARALLEL_FORCE", "1");
    }
    if check {
        cmd.env("HAL_CHECK", "1");
    }
    if spans {
        cmd.env("HAL_SPANS", "1");
    }
    if metrics {
        cmd.env("HAL_METRICS", "1");
    }
    if prof {
        cmd.env("HAL_PROF", "1");
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} (HAL_PARALLEL={parallel}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One bin's checker verdicts: (bin, sequential clean, parallel clean).
fn check_clean(bin: &str) -> bool {
    std::fs::read_to_string(format!("results/CHECK_{bin}.json"))
        .map(|s| s.contains("\"clean\": true"))
        .unwrap_or(false)
}

/// Derived artifacts a bin regenerates this sweep, given the flags.
fn bin_artifacts(bin: &str, check: bool, spans: bool, metrics: bool, prof: bool) -> Vec<String> {
    let mut v = vec![format!("results/{bin}.txt"), format!("results/BENCH_{bin}.json")];
    if TRACE_EXPORTS.contains(&bin) {
        v.push(format!("results/{bin}_trace.json"));
    }
    if check {
        v.push(format!("results/CHECK_{bin}.json"));
    }
    if spans {
        v.push(format!("results/SPANS_{bin}.json"));
    }
    if metrics {
        v.push(format!("results/METRICS_{bin}.json"));
    }
    if prof {
        v.push(format!("results/PROF_{bin}.json"));
        v.push(format!("results/PROF_{bin}_hosttrace.json"));
    }
    v
}

/// Delete derived files a previous sweep (or an older tree) left in
/// `results/` that this sweep may not overwrite — otherwise a stale
/// `*_trace.json` from a removed bin looks exactly like fresh output.
fn remove_stale_artifacts() {
    let Ok(dir) = std::fs::read_dir("results") else {
        return;
    };
    for entry in dir.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = name.ends_with("_trace.json")
            || name.starts_with("SPANS_")
            || name.starts_with("METRICS_")
            || name.starts_with("CHECK_")
            || name.starts_with("PROF_")
            || name.starts_with("MANIFEST_");
        if stale {
            if let Err(e) = std::fs::remove_file(entry.path()) {
                eprintln!("repro_all: could not remove stale results/{name}: {e}");
            }
        }
    }
}

fn main() {
    let quick = out::quick();
    let check = out::check_enabled();
    let spans = out::spans_enabled();
    let metrics = out::metrics_enabled();
    let prof = out::prof_enabled();
    std::fs::create_dir_all("results").expect("create results/");
    remove_stale_artifacts();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Under --check / --spans / --metrics the parallel executor level is
    // pinned so the determinism assertions cover a stable K pair for
    // this host. The K is derived from the visible cores — at least 2
    // so the threaded executor paths are exercised even on 1-core CI,
    // at most 7 (one shard per simulated node) — rather than a
    // hardcoded count that oversubscribes small hosts.
    let pinned = check || spans || metrics;
    let par_level = if pinned {
        cores.clamp(2, 7).to_string()
    } else {
        "auto".to_string()
    };
    let par_level = par_level.as_str();
    // The K the parallel leg actually runs at — `auto` means one shard
    // per visible core. Recorded separately from `host_cores` so the
    // JSON never again conflates "cores the host has" with "shards the
    // parallel leg used".
    let par_parallelism = match par_level {
        "auto" => cores,
        k => k.parse::<usize>().expect("par level is a number"),
    };
    let mut results = Vec::new();
    let mut checks: Vec<(&str, bool, bool)> = Vec::new();
    let mut manifest: Vec<String> = Vec::new();

    for bin in BINS {
        eprintln!("== running {bin} (sequential) ==");
        let seq = run_bin(bin, "1", quick, check, false);
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &seq.stdout).expect("write results file");
        eprintln!("   -> {path} ({} bytes)", seq.stdout.len());
        let seq_clean = check && check_clean(bin);
        // Snapshot the K=1 span/metrics artifacts before the parallel
        // run overwrites them.
        let det_files: Vec<String> = bin_artifacts(bin, false, spans, metrics, false)
            .into_iter()
            .filter(|p| p.contains("SPANS_") || p.contains("METRICS_"))
            .collect();
        let seq_artifacts: Vec<(String, Vec<u8>)> = det_files
            .iter()
            .map(|p| {
                let bytes = std::fs::read(p)
                    .unwrap_or_else(|e| panic!("{bin}: expected artifact {p} after K=1 run: {e}"));
                (p.clone(), bytes)
            })
            .collect();

        eprintln!("== running {bin} (parallel, HAL_PARALLEL={par_level}, {cores} cores) ==");
        let par = run_bin(bin, par_level, quick, check, pinned);
        if check {
            checks.push((bin, seq_clean, check_clean(bin)));
        }
        if !HOST_TIMED_STDOUT.contains(bin) {
            assert!(
                seq.stdout == par.stdout,
                "{bin}: stdout differs between sequential and parallel runs — \
                 the windowed executor broke determinism"
            );
        }
        for (path, seq_bytes) in &seq_artifacts {
            let par_bytes = std::fs::read(path)
                .unwrap_or_else(|e| panic!("{bin}: expected artifact {path} after K={par_level} run: {e}"));
            assert!(
                *seq_bytes == par_bytes,
                "{bin}: {path} differs between K=1 and K={par_level} — \
                 span/metrics export leaked host-dependent state"
            );
        }
        for p in bin_artifacts(bin, check, spans, metrics, prof) {
            assert!(
                std::path::Path::new(&p).is_file(),
                "{bin}: expected artifact {p} was not produced"
            );
            manifest.push(p);
        }

        let seq_err = String::from_utf8_lossy(&seq.stderr);
        let par_err = String::from_utf8_lossy(&par.stderr);
        let seq_lines = parse_benchlines(&seq_err);
        let par_lines = parse_benchlines(&par_err);
        let runs = seq_lines
            .iter()
            .filter_map(|(label, s_ms)| {
                par_lines
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, p_ms)| (label.clone(), *s_ms, *p_ms))
            })
            .collect();
        results.push(BinResult {
            bin,
            seq_wall_ms: parse_total_ms(&seq_err, bin),
            par_wall_ms: parse_total_ms(&par_err, bin),
            runs,
        });
    }

    // Human-readable speedup table (stderr, like all timing output).
    eprintln!("\n== sequential vs parallel ({cores} cores) ==");
    eprintln!("{:<20} {:>12} {:>12} {:>9}", "bin", "seq (ms)", "par (ms)", "speedup");
    let (mut seq_total, mut par_total) = (0.0f64, 0.0f64);
    for r in &results {
        seq_total += r.seq_wall_ms;
        par_total += r.par_wall_ms;
        let speedup = if r.par_wall_ms > 0.0 {
            r.seq_wall_ms / r.par_wall_ms
        } else {
            0.0
        };
        eprintln!(
            "{:<20} {:>12.1} {:>12.1} {:>8.2}x",
            r.bin, r.seq_wall_ms, r.par_wall_ms, speedup
        );
    }
    let total_speedup = if par_total > 0.0 { seq_total / par_total } else { 0.0 };
    eprintln!(
        "{:<20} {:>12.1} {:>12.1} {:>8.2}x",
        "TOTAL", seq_total, par_total, total_speedup
    );

    // Machine-readable record, including per-workload speedups.
    let mut bins_json = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            bins_json.push_str(",\n");
        }
        let mut runs_json = String::new();
        for (j, (label, s_ms, p_ms)) in r.runs.iter().enumerate() {
            if j > 0 {
                runs_json.push_str(",\n");
            }
            let speedup = if *p_ms > 0.0 { s_ms / p_ms } else { 0.0 };
            runs_json.push_str(&format!(
                "        {{\"label\": \"{}\", \"seq_wall_ms\": {s_ms:.3}, \"par_wall_ms\": {p_ms:.3}, \"speedup\": {speedup:.3}}}",
                json_escape(label),
            ));
        }
        let speedup = if r.par_wall_ms > 0.0 {
            r.seq_wall_ms / r.par_wall_ms
        } else {
            0.0
        };
        bins_json.push_str(&format!(
            "    {{\n      \"bin\": \"{}\",\n      \"seq_wall_ms\": {:.3},\n      \"par_wall_ms\": {:.3},\n      \"speedup\": {:.3},\n      \"runs\": [\n{}\n      ]\n    }}",
            r.bin, r.seq_wall_ms, r.par_wall_ms, speedup, runs_json
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"repro_all\",\n  \"host_cores\": {cores},\n  \"seq_parallelism\": 1,\n  \"par_parallelism\": {par_parallelism},\n  \"quick\": {quick},\n  \"bins\": [\n{bins_json}\n  ],\n  \"total_seq_wall_ms\": {seq_total:.3},\n  \"total_par_wall_ms\": {par_total:.3},\n  \"total_speedup\": {total_speedup:.3}\n}}\n"
    );
    std::fs::write("results/BENCH_repro_all.json", json).expect("write BENCH_repro_all.json");

    // Fold the per-bin checker verdicts into one machine-readable file.
    // Each bin already exits nonzero on violations (killing the sweep
    // above), so reaching this point with a dirty verdict means the
    // CHECK file is stale or missing — flagged as clean=false.
    if check {
        let all_clean = checks.iter().all(|&(_, s, p)| s && p);
        let mut bins_json = String::new();
        for (i, (bin, seq_clean, par_clean)) in checks.iter().enumerate() {
            if i > 0 {
                bins_json.push_str(",\n");
            }
            bins_json.push_str(&format!(
                "    {{\"bin\": \"{bin}\", \"seq_clean\": {seq_clean}, \"par_clean\": {par_clean}, \"detail\": \"results/CHECK_{bin}.json\"}}"
            ));
        }
        let check_json = format!(
            "{{\n  \"subject\": \"repro_all\",\n  \"clean\": {all_clean},\n  \"parallel_levels\": [1, {par_parallelism}],\n  \"bins\": [\n{bins_json}\n  ]\n}}\n"
        );
        std::fs::write("results/CHECK_repro_all.json", check_json)
            .expect("write CHECK_repro_all.json");
        eprintln!(
            "protocol checker: {} across {} bin(s), K in {{1, {par_parallelism}}} (results/CHECK_repro_all.json)",
            if all_clean { "CLEAN" } else { "VIOLATIONS" },
            checks.len()
        );
        assert!(all_clean, "protocol checker verdicts incomplete or dirty");
    }

    // Manifest of everything this sweep regenerated (existence already
    // asserted per bin above).
    manifest.push("results/BENCH_repro_all.json".to_string());
    if check {
        manifest.push("results/CHECK_repro_all.json".to_string());
    }
    let mut files_json = String::new();
    for (i, p) in manifest.iter().enumerate() {
        if i > 0 {
            files_json.push_str(",\n");
        }
        files_json.push_str(&format!("    \"{}\"", json_escape(p)));
    }
    let manifest_json = format!(
        "{{\n  \"subject\": \"repro_all\",\n  \"quick\": {quick},\n  \"check\": {check},\n  \
         \"spans\": {spans},\n  \"metrics\": {metrics},\n  \"artifacts\": [\n{files_json}\n  ]\n}}\n"
    );
    std::fs::write("results/MANIFEST_repro_all.json", manifest_json)
        .expect("write MANIFEST_repro_all.json");
    eprintln!(
        "manifest: {} artifact(s) regenerated (results/MANIFEST_repro_all.json)",
        manifest.len() + 1
    );
    eprintln!("all harnesses completed; see results/ (speedups in results/BENCH_repro_all.json)");
}
