//! Table 1 reproduction: Cholesky decomposition variants on the
//! simulated CM-5.
//!
//! Paper: "Columns BP and CP represent execution times for the
//! implementations which start the execution of iteration i+1 before the
//! execution of iteration i has completed by only using local
//! synchronization. Columns Seq and Bcast show the numbers obtained by
//! completing the execution of iteration i before starting that of the
//! iteration i+1." Plus §6.5: "without flow control the pipelined
//! version of Cholesky Decomposition did not deliver the expected
//! performance."
//!
//! Expected shape: BP/CP (pipelined, local sync) beat Seq/Bcast (global
//! sync); disabling flow control degrades the pipelined variant.

use hal::MachineConfig;
use hal_bench::{banner, cell, header, ms, out, row};
use hal_workloads::cholesky::{run_sim, CholeskyConfig, Variant};

fn run(n: usize, p: usize, variant: Variant, flow: bool) -> f64 {
    let cfg = CholeskyConfig {
        n,
        variant,
        per_flop_ns: 140,
        seed: 42,
    };
    let machine = MachineConfig::builder(p)
        .flow_control(flow)
        .seed(7)
        .observe(out::observe_opts())
        .backend(out::backend())
        .parallelism(out::parallelism()).build().unwrap();
    let label = format!("cholesky n={n} p={p} {variant:?} fc={flow}");
    let (_, report) = out::timed(label, || run_sim(machine, cfg, false));
    report.makespan.as_secs_f64()
}

fn main() {
    out::note_tags("cholesky", hal_workloads::cholesky::ChMsg::TAGS);
    banner(
        "Table 1: Cholesky decomposition (msec) on the simulated CM-5",
        "BP/CP = pipelined with local synchronization (block/cyclic mapping);\n\
         Seq/Bcast = iteration i completes before i+1 starts.\n\
         'BP noFC' = the \u{a7}6.5 ablation: BP with bulk flow control disabled.",
    );
    let widths = [5usize, 4, 10, 10, 10, 10, 10];
    header(&["n", "P", "BP", "CP", "Seq", "Bcast", "BP noFC"], &widths);
    let sizes: &[usize] = if out::quick() { &[64] } else { &[64, 128, 256] };
    for &n in sizes {
        for &p in &[4usize, 8, 16, 32] {
            if p > n {
                continue;
            }
            let bp = run(n, p, Variant::BP, true);
            let cp = run(n, p, Variant::CP, true);
            let seq = run(n, p, Variant::Seq, true);
            let bc = run(n, p, Variant::Bcast, true);
            let bp_nofc = run(n, p, Variant::BP, false);
            row(
                &[
                    cell(n),
                    cell(p),
                    ms(bp),
                    ms(cp),
                    ms(seq),
                    ms(bc),
                    ms(bp_nofc),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape checks: pipelined (BP/CP) < global (Seq/Bcast) at every P;\n\
         cyclic (CP) <= block (BP) at larger P (better tail balance);\n\
         BP-without-flow-control >= BP."
    );
    out::finish("table1_cholesky");
}
