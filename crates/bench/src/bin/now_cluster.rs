//! Extension experiment: the same runtime on a network of workstations.
//!
//! The paper's conclusions (§9): "networks of workstations with fast
//! interconnect network have drawn more and more attention as the
//! potential work force for high performance concurrent computing …
//! We are investigating ways to reconcile such hardware platforms and
//! our runtime system." This harness runs the evaluation workloads on a
//! NOW-calibrated link model (~20x the CM-5's latency, 1/3 bandwidth)
//! and shows which algorithmic structures tolerate the change: the
//! pipelined, locally synchronized programs degrade gracefully; the
//! globally synchronized ones pay the latency on every iteration.

use hal::MachineConfig;
use hal_am::LinkModel;
use hal_bench::{banner, header, out, row};
use hal_workloads::cholesky::{self, CholeskyConfig, Variant};
use hal_workloads::matmul::{self, MatmulConfig};

fn chol(link: LinkModel, name: &str, variant: Variant) -> f64 {
    let mut m = MachineConfig::builder(8)
        .seed(4)
        .observe(out::observe_opts())
        .backend(out::backend())
        .parallelism(out::parallelism()).build().unwrap();
    let label = format!("cholesky n=96 {variant:?} {name}");
    m.link = link;
    let (_, r) = out::timed(label, || {
        cholesky::run_sim(
            m,
            CholeskyConfig {
                n: 96,
                variant,
                per_flop_ns: 140,
                seed: 21,
            },
            false,
        )
    });
    r.makespan.as_secs_f64() * 1e3
}

fn mm(link: LinkModel, name: &str) -> f64 {
    let mut m = MachineConfig::builder(16)
        .seed(4)
        .observe(out::observe_opts())
        .backend(out::backend())
        .parallelism(out::parallelism()).build().unwrap();
    let label = format!("matmul 256 p=16 {name}");
    m.link = link;
    let (_, r) = out::timed(label, || {
        matmul::run_sim(
            m,
            MatmulConfig {
                grid: 4,
                block: 64,
                per_flop_ns: 135,
                seed_a: 5,
                seed_b: 6,
            },
            false,
        )
    });
    r.makespan.as_secs_f64() * 1e3
}

fn main() {
    banner(
        "Extension: CM-5 fabric vs network-of-workstations link model (virtual ms)",
        "same kernels, same programs; only the interconnect calibration changes",
    );
    let widths = [28usize, 10, 10, 8];
    header(&["workload", "CM-5", "NOW", "slowdown"], &widths);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "cholesky BP (pipelined)",
            chol(LinkModel::cm5(), "cm5", Variant::BP),
            chol(LinkModel::now_cluster(), "now", Variant::BP),
        ),
        (
            "cholesky Bcast (global)",
            chol(LinkModel::cm5(), "cm5", Variant::Bcast),
            chol(LinkModel::now_cluster(), "now", Variant::Bcast),
        ),
        (
            "cholesky Seq (global)",
            chol(LinkModel::cm5(), "cm5", Variant::Seq),
            chol(LinkModel::now_cluster(), "now", Variant::Seq),
        ),
        (
            "matmul 256^2 on 16 (systolic)",
            mm(LinkModel::cm5(), "cm5"),
            mm(LinkModel::now_cluster(), "now"),
        ),
    ];
    for (name, cm5, now) in rows {
        row(
            &[
                name.to_string(),
                format!("{cm5:.2}"),
                format!("{now:.2}"),
                format!("{:.2}x", now / cm5),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: the communication-intensive factorization pays roughly the\n\
         bandwidth ratio (~3x) regardless of variant — with the pipelined BP\n\
         still fastest in absolute terms — while the compute-dense systolic\n\
         multiply barely notices the commodity network. Location-transparent\n\
         programs carry over unchanged; only the cost calibration moved."
    );
    out::finish("now_cluster");
}
