//! Ablation study: what each of the paper's design choices buys.
//!
//! Every row runs the same workload twice — with the paper's mechanism
//! and with the alternative the paper argues against:
//!
//! * **aliases (§5)** — alias-based latency hiding vs blocking remote
//!   creation, on a chain-of-remote-creations workload;
//! * **name caching (§4.1)** — descriptor-index caching vs per-message
//!   receiver-side name-table lookups, on a remote send storm;
//! * **collective broadcast scheduling (§6.4)** — one dispatch per local
//!   member quantum vs one per member, on a broadcast-heavy group;
//! * **FIR chases (§4.3)** — small locate-then-send vs forwarding whole
//!   (bulk) messages along migration chains;
//! * **flow control (§6.5)** — three-phase granted bulk vs eager
//!   injection, on pipelined Cholesky (also in Table 1).

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal::OptFlags;
use hal_bench::{banner, header, out, row};
use std::sync::atomic::{AtomicUsize, Ordering};

struct Sink;
impl Behavior for Sink {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
}
fn make_sink(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Sink)
}

/// Creates `left` children round-robin across nodes, each of which does
/// the same — a creation-dominated irregular expansion.
struct Spawner {
    behavior: BehaviorId,
}
impl Behavior for Spawner {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let left = msg.args[0].as_int();
        if left <= 0 {
            return;
        }
        let next = ((ctx.node() as usize + 1) % ctx.nodes()) as u16;
        let c = ctx.create_on(next, self.behavior, vec![Value::Int(self.behavior.0 as i64)]);
        ctx.send(c, 0, vec![Value::Int(left - 1)]);
        // Overlap: useful local work the alias lets us start immediately.
        ctx.charge(hal_des::VirtualDuration::from_micros(10));
    }
}
fn make_spawner(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Spawner {
        behavior: BehaviorId(args[0].as_int() as u32),
    })
}

static RUN_NO: AtomicUsize = AtomicUsize::new(0);

fn run(opt: OptFlags, f: impl FnOnce(&mut Ctx<'_>, &Ids)) -> hal::SimReport {
    run_cfg(
        MachineConfig::builder(8).opt(opt).seed(2).observe(out::observe_opts()),
        f,
    )
}

fn run_cfg(cfg: MachineConfigBuilder, f: impl FnOnce(&mut Ctx<'_>, &Ids)) -> hal::SimReport {
    let mut program = Program::new();
    let ids = Ids {
        sink: program.behavior("sink", make_sink),
        spawner: program.behavior("spawner", make_spawner),
        member: program.behavior("member", make_member),
        bulk_spray: program.behavior("bulk_spray", make_bulk_spray),
    };
    let cfg = cfg.parallelism(out::parallelism()).build().unwrap();
    let mut m = SimMachine::new(cfg, program.build());
    m.with_ctx(0, |ctx| f(ctx, &ids));
    let t0 = std::time::Instant::now();
    let r = m.run().unwrap();
    let n = RUN_NO.fetch_add(1, Ordering::Relaxed);
    out::note_run(format!("ablation run {n}"), &r, t0.elapsed());
    r
}

struct Ids {
    sink: BehaviorId,
    spawner: BehaviorId,
    member: BehaviorId,
    bulk_spray: BehaviorId,
}

struct Member;
impl Behavior for Member {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        ctx.charge(hal_des::VirtualDuration::from_nanos(500));
    }
}
fn make_member(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Member)
}

/// A nomad walking while bulk-payload messages chase it. The dwell is
/// shorter than the gossip round trip, so chasers keep hitting
/// unconfirmed forward pointers — the §4.3 scenario where FIR-vs-
/// whole-message forwarding differ.
struct Nomad {
    hops: i64,
}
impl Behavior for Nomad {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                if self.hops > 0 {
                    self.hops -= 1;
                    ctx.charge(hal_des::VirtualDuration::from_micros(20));
                    let me = ctx.me();
                    let next = ((ctx.node() as usize + 1) % ctx.nodes()) as u16;
                    ctx.send(me, 0, vec![]);
                    ctx.migrate(next);
                }
            }
            1 => {
                let _payload = msg.args[0].as_bytes();
            }
            _ => unreachable!(),
        }
    }
}

/// Sends `n` messages with `payload` to `target`, in waves of ten per
/// poke (later waves profit from the NameInfo cache the first wave
/// earns).
struct BulkSpray {
    target: MailAddr,
    n: i64,
    payload: i64,
}
impl Behavior for BulkSpray {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        let blob = hal_am::Bytes::from(vec![0u8; self.payload as usize]);
        let wave = self.n.min(10);
        for i in 0..wave {
            ctx.send(self.target, 1, vec![Value::Bytes(blob.clone()), Value::Int(i)]);
        }
        self.n -= wave;
        if self.n > 0 {
            let me = ctx.me();
            ctx.send(me, 0, vec![]);
        }
    }
}
fn make_bulk_spray(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(BulkSpray {
        target: args[0].as_addr(),
        n: args[1].as_int(),
        payload: args[2].as_int(),
    })
}

fn main() {
    banner(
        "Ablations: each design choice vs the alternative the paper rejects",
        "8 simulated nodes; times are virtual.",
    );
    let on = OptFlags::default();
    let widths = [34usize, 14, 14, 10];
    header(&["mechanism (workload)", "paper (us)", "ablated (us)", "ratio"], &widths);

    let print = |name: &str, a: f64, b: f64| {
        row(
            &[
                name.to_string(),
                format!("{:.1}", a),
                format!("{:.1}", b),
                format!("{:.2}x", b / a),
            ],
            &widths,
        );
    };

    // ---- aliases: chain of 64 remote creations with overlapped work.
    let chain = |ctx: &mut Ctx<'_>, ids: &Ids| {
        let root = ctx.create_local(Box::new(Spawner {
            behavior: ids.spawner,
        }));
        ctx.send(root, 0, vec![Value::Int(64)]);
    };
    let with = run(on, chain);
    let without = run(OptFlags { aliases: false, ..on }, chain);
    print(
        "aliases (creation chain x64)",
        with.makespan.as_micros_f64(),
        without.makespan.as_micros_f64(),
    );

    // ---- name caching: 7 nodes each storm one hot actor on node 5 —
    // the receiver's name table is the bottleneck, so per-message hash
    // lookups show directly.
    let storm = |ctx: &mut Ctx<'_>, ids: &Ids| {
        let target = ctx.create_on(5, ids.sink, vec![]);
        for node in 0..ctx.nodes() as u16 {
            if node == 5 {
                continue;
            }
            let s = ctx.create_on(
                node,
                ids.bulk_spray,
                vec![Value::Addr(target), Value::Int(150), Value::Int(0)],
            );
            ctx.send(s, 0, vec![]);
        }
    };
    let with = run(on, storm);
    let without = run(
        OptFlags {
            name_caching: false,
            ..on
        },
        storm,
    );
    print(
        "name caching (7x150 sends, hot node)",
        with.makespan.as_micros_f64(),
        without.makespan.as_micros_f64(),
    );

    // ---- collective broadcast: 40 broadcasts to a 256-member group.
    let bcasts = |ctx: &mut Ctx<'_>, ids: &Ids| {
        let g = ctx.grpnew(ids.member, 256, vec![]);
        for _ in 0..40 {
            ctx.broadcast(g, 0, vec![]);
        }
    };
    let with = run(on, bcasts);
    let without = run(
        OptFlags {
            collective_bcast: false,
            ..on
        },
        bcasts,
    );
    print(
        "collective sched (40 bcasts x256)",
        with.makespan.as_micros_f64(),
        without.makespan.as_micros_f64(),
    );

    // ---- FIR vs whole-message forwarding: 4KB messages from node 4
    // chase a fast-hopping nomad through unconfirmed forward pointers.
    let chase = |ctx: &mut Ctx<'_>, ids: &Ids| {
        let nomad = ctx.create_local(Box::new(Nomad { hops: 32 }));
        ctx.send(nomad, 0, vec![]);
        let s = ctx.create_on(
            4,
            ids.bulk_spray,
            vec![Value::Addr(nomad), Value::Int(20), Value::Int(4096)],
        );
        ctx.send(s, 0, vec![]);
    };
    let with = run(on, chase);
    let without = run(OptFlags { fir_chase: false, ..on }, chase);
    print(
        "FIR locate (20x4KB chasing 32 hops)",
        with.makespan.as_micros_f64(),
        without.makespan.as_micros_f64(),
    );
    println!(
        "  (network bytes: {} with FIR vs {} forwarding whole messages; whole-forwards: {})",
        with.stats.get("net.bytes"),
        without.stats.get("net.bytes"),
        without.stats.get("deliver.forwarded_whole"),
    );

    println!(
        "\nratios > 1 mean the paper's mechanism wins; see table1_cholesky\n\
         for the flow-control ablation on the pipelined Cholesky workload."
    );

    // Flight-recorder view of the FIR chase ablation's paper-side run:
    // chain-length and delivery-path histograms for the same workload.
    let traced = run_cfg(
        MachineConfig::builder(8).opt(on).seed(2).observe(out::observe_opts().trace(true)),
        chase,
    );
    let trace = traced.trace.expect("tracing was enabled");
    let h = trace.histograms();
    println!(
        "\nflight recorder (FIR chase run): {} chase episodes, mean chain {:.1} hops,\n\
         longest {} hops; {} deliveries waited out a migration",
        h.fir_chain.count(),
        h.fir_chain.mean(),
        h.fir_chain.max(),
        h.delivery_migrated.count(),
    );
    let path = "results/ablations_trace.json";
    if let Err(e) = trace.write_chrome(path) {
        eprintln!("ablations: trace export to {path} failed: {e}");
        std::process::exit(1);
    }
    println!("chrome trace written to {path}");
    out::finish("ablations");
}
