//! Table 3 reproduction: comparable method-invocation costs.
//!
//! The paper compares "the sum of the time for locality check and the
//! time for function invocation" against ABCL/onAP1000 and Concert (all
//! minimum values). We cannot rerun those systems; the honest analog is
//! the *invocation-cost ladder* inside this runtime — the same three
//! mechanisms whose relative costs justify compiler-controlled static
//! dispatch (§6.3):
//!
//! 1. generic message send (locality check + enqueue + dispatch +
//!    method invocation),
//! 2. compiler fast path (locality check + inline static dispatch on the
//!    sender's stack),
//! 3. a plain function call (the floor).
//!
//! Reported in simulated CM-5 µs *and* measured host nanoseconds.

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_bench::{banner, header, out, row, us};
use hal_workloads::synth::{self, SynthMsg};
use std::time::Instant;

struct Sink {
    hits: u64,
}
impl Behavior for Sink {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {
        self.hits += 1;
    }
}

fn main() {
    out::note_tags("synth", SynthMsg::TAGS);
    banner(
        "Table 3: comparable method-invocation costs",
        "generic send vs compiler fast path (locality check + static dispatch) vs plain call.\n\
         Simulated us use the CM-5 cost model; host ns are measured on this machine.",
    );

    let cost = CostModel::cm5();
    // Simulated costs of each rung (what the machine charges end to end
    // for one local invocation).
    let generic_us = (cost.locality_check.as_nanos()
        + cost.local_send.as_nanos()
        + cost.constraint_check.as_nanos() * 2
        + cost.dispatch.as_nanos()
        + cost.method_invoke.as_nanos()) as f64;
    let fast_us = (cost.locality_check.as_nanos()
        + cost.local_send_fast.as_nanos()
        + cost.method_invoke.as_nanos()) as f64;
    let call_us = cost.method_invoke.as_nanos() as f64;

    // Host-measured: run the actual kernel paths many times.
    let mut program = Program::new();
    let _probe = synth::register(&mut program);
    let registry = program.build();
    let iters = if out::quick() { 20_000u64 } else { 200_000 };

    // Generic path: enqueue + step.
    let mut m = SimMachine::new(MachineConfig::new(1), registry.clone());
    let sink = m.with_ctx(0, |ctx| ctx.create_local(Box::new(Sink { hits: 0 })));
    let t0 = Instant::now();
    for chunk in 0..(iters / 1000) {
        m.with_ctx(0, |ctx| {
            for i in 0..1000 {
                let (sel, args) = SynthMsg::Echo {
                    v: (chunk * 1000 + i) as i64,
                }
                .encode();
                ctx.send(sink, sel, args);
            }
        });
        m.run().unwrap();
    }
    let generic_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Fast path: inline dispatch.
    let mut m = SimMachine::new(MachineConfig::new(1), registry.clone());
    let sink = m.with_ctx(0, |ctx| ctx.create_local(Box::new(Sink { hits: 0 })));
    let t0 = Instant::now();
    m.with_ctx(0, |ctx| {
        for i in 0..iters {
            let (sel, args) = SynthMsg::Echo { v: i as i64 }.encode();
            ctx.send_fast(sink, sel, args);
        }
    });
    let fast_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let fast_taken = m.report().stats.get("fast.inline");

    // Plain call floor: the same behavior invoked directly.
    let mut direct = Sink { hits: 0 };
    let mut m2 = SimMachine::new(MachineConfig::new(1), registry);
    let t0 = Instant::now();
    m2.with_ctx(0, |ctx| {
        for i in 0..iters {
            let (sel, args) = SynthMsg::Echo { v: i as i64 }.encode();
            direct.dispatch(ctx, Msg::new(sel, args));
        }
    });
    let call_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    assert_eq!(direct.hits, iters);

    let widths = [44usize, 14, 14];
    header(&["mechanism", "sim (us)", "host (ns)"], &widths);
    row(
        &[
            "generic local send (queue + dispatch)".into(),
            us(generic_us),
            format!("{generic_ns:.0}"),
        ],
        &widths,
    );
    row(
        &[
            "fast path: locality check + static dispatch".into(),
            us(fast_us),
            format!("{fast_ns:.0}"),
        ],
        &widths,
    );
    row(
        &["plain function call".into(), us(call_us), format!("{call_ns:.0}")],
        &widths,
    );
    println!(
        "\nfast path taken inline {fast_taken} / {iters} times.\n\
         shape: on the CM-5 scale the ladder is ~13x (generic) / ~5x (fast)\n\
         over a plain call, motivating \u{a7}6.3's compiler-controlled static\n\
         dispatch; on a modern host the in-process queue is already cheap and\n\
         the remaining gap over a raw call is marshalling + scheduling."
    );

    // Flight-recorder cross-check: a traced generic-send run whose
    // per-message delivery latency should sit at the locality-check +
    // local-send cost the table above derives analytically.
    let mut program = Program::new();
    let _probe = synth::register(&mut program);
    let mut m = SimMachine::new(
        MachineConfig::builder(1).observe(out::observe_opts().trace(true)).build().unwrap(),
        program.build(),
    );
    let sink = m.with_ctx(0, |ctx| ctx.create_local(Box::new(Sink { hits: 0 })));
    m.with_ctx(0, |ctx| {
        for i in 0..1000i64 {
            let (sel, args) = SynthMsg::Echo { v: i }.encode();
            ctx.send(sink, sel, args);
        }
    });
    let t0 = Instant::now();
    let r = m.run().unwrap();
    out::note_run("traced generic sends", &r, t0.elapsed());
    let trace = r.trace.expect("tracing was enabled");
    let h = trace.histograms();
    println!(
        "\nflight recorder: {} local deliveries, mean latency {:.0} ns (sim)",
        h.delivery_local.count(),
        h.delivery_local.mean()
    );
    let out = "results/table3_invocation_trace.json";
    if let Err(e) = trace.write_chrome(out) {
        eprintln!("table3_invocation: trace export to {out} failed: {e}");
        std::process::exit(1);
    }
    println!("chrome trace written to {out}");
    hal_bench::out::finish("table3_invocation");
}
