//! Table 2 reproduction: execution time of the runtime primitives
//! (simulated µs under the CM-5 cost model).
//!
//! The paper's headline rows: remote creation completes locally in
//! **5.83 µs** (alias latency hiding) while the actual creation takes
//! **20.83 µs**; a locality check for locally created actors completes
//! **within 1 µs** using only local information.
//!
//! Each row is *measured through the running machine* — clock deltas
//! around the primitive or completion-time observations — not read from
//! the cost-model table, so protocol changes show up here.

use hal::prelude::*;
use hal_kernel::SimMachine;
use hal_bench::{banner, header, out, row, us};
use hal_workloads::synth::{self, SynthMsg};

/// Measure the node-0 clock advance caused by `f`.
fn clocked(m: &mut SimMachine, f: impl FnOnce(&mut Ctx<'_>)) -> f64 {
    let before = m.kernel(0).clock;
    m.with_ctx(0, f);
    (m.kernel(0).clock - before).as_nanos() as f64
}

fn main() {
    banner(
        "Table 2: execution time of runtime primitives (us, simulated CM-5)",
        "paper anchors: remote creation 5.83 apparent / 20.83 actual; locality check < 1",
    );

    let mut program = Program::new();
    let probe = synth::register(&mut program);
    let nil = synth::register_nil(&mut program);
    let registry = program.build();

    let fresh = || {
        SimMachine::new(
            MachineConfig::builder(4)
                .observe(out::observe_opts())
                .parallelism(out::parallelism()).build().unwrap(),
            registry.clone(),
        )
    };

    // --- creation ------------------------------------------------------
    let mut m = fresh();
    let k = 1000;
    let local_creation = clocked(&mut m, |ctx| {
        for _ in 0..k {
            ctx.create_local(Box::new(hal_workloads::synth::Probe { behavior: probe }));
        }
    }) / k as f64;

    // "Remote creation with no initialization message" (§5).
    let mut m = fresh();
    let remote_apparent = clocked(&mut m, |ctx| {
        ctx.create_on(1, nil, vec![]);
    });
    let t0 = std::time::Instant::now();
    let rep = m.run().unwrap();
    out::note_run("remote creation", &rep, t0.elapsed());
    let remote_actual = rep
        .stats
        .histogram("create.remote_actual_ns")
        .expect("observed")
        .max() as f64;

    // --- locality check + sends ----------------------------------------
    // Local send to a locally created actor (locality check + enqueue).
    let mut m = fresh();
    let (target, storm) = m.with_ctx(0, |ctx| {
        let t = ctx.create_local(Box::new(hal_workloads::synth::Probe { behavior: probe }));
        let s = ctx.create_local(Box::new(hal_workloads::synth::Probe { behavior: probe }));
        (t, s)
    });
    let local_send = clocked(&mut m, |ctx| {
        for i in 0..1000 {
            let (sel, args) = SynthMsg::Echo { v: i }.encode();
            ctx.send(target, sel, args);
        }
    }) / 1000.0;
    let _ = storm;

    // Remote send: sender-side cost only (check + compose + inject).
    let mut m = fresh();
    let remote = m.with_ctx(1, |ctx| {
        ctx.create_local(Box::new(hal_workloads::synth::Probe { behavior: probe }))
    });
    let remote_send = clocked(&mut m, |ctx| {
        for i in 0..1000 {
            let (sel, args) = SynthMsg::Echo { v: i }.encode();
            ctx.send(remote, sel, args);
        }
    }) / 1000.0;

    // The locality check alone, via the cost model the machine charges.
    let cost = CostModel::cm5();
    let locality_local = cost.locality_check.as_nanos() as f64;
    let name_lookup = cost.name_lookup.as_nanos() as f64;

    // --- dispatch / join -----------------------------------------------
    // End-to-end local call/return: request + echo + reply + join fire.
    let mut m = fresh();
    let echo = m.with_ctx(0, |ctx| {
        ctx.create_local(Box::new(hal_workloads::synth::Probe { behavior: probe }))
    });
    let before = m.kernel(0).clock;
    m.with_ctx(0, |ctx| {
        let (sel, args) = SynthMsg::Echo { v: 1 }.encode();
        hal::call_then(ctx, echo, sel, args, |ctx, _| ctx.stop());
    });
    let t0 = std::time::Instant::now();
    let r = m.run().unwrap();
    out::note_run("local call/return", &r, t0.elapsed());
    let callret = (m.kernel(0).clock - before).as_nanos() as f64;

    let widths = [44usize, 12];
    header(&["primitive", "time (us)"], &widths);
    let rows: Vec<(&str, f64)> = vec![
        ("local actor creation", local_creation),
        ("remote creation (apparent, at requester)", remote_apparent),
        ("remote creation (actual, end to end)", remote_actual),
        ("locality check (locally created actor)", locality_local),
        ("name-table hash lookup (foreign key)", name_lookup),
        ("local message send (check + enqueue)", local_send),
        ("remote message send (sender side)", remote_send),
        ("local call/return incl. join continuation", callret),
    ];
    for (name, ns) in rows {
        row(&[name.to_string(), us(ns)], &widths);
    }
    println!(
        "\npaper targets: apparent 5.83us / actual 20.83us; locality check < 1us.\n\
         measured apparent = {:.2}us, actual = {:.2}us, locality check = {:.2}us",
        remote_apparent / 1e3,
        remote_actual / 1e3,
        locality_local / 1e3
    );
    out::finish("table2_primitives");
}
