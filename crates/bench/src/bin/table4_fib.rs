//! Table 4 reproduction: Fibonacci with and without dynamic load
//! balancing, plus the Cilk and sequential-C comparison points.
//!
//! Paper: fib(33) creates 11,405,773 actors; receiver-initiated random
//! polling balances the skewed call tree; Cilk takes 73.16 s and an
//! optimized C version 8.49 s on one node.
//!
//! Simulated virtual seconds reproduce the with/without-LB comparison
//! across partition sizes; the host rows report real wall-clock for the
//! Rust baselines. We run smaller n than 33 to keep the discrete-event
//! simulation tractable and scale grain size with n exactly as the
//! paper's creation-elision optimization did ("actor creations were
//! optimized away").

use hal::MachineConfig;
use hal_baselines::{call_tree_nodes, fib, parallel_fib};
use hal_bench::{banner, cell, header, out, row, secs};
use hal_workloads::fib::{run_sim, FibConfig, Placement, SEQ_NODE_COST_NS};
use std::time::Instant;

fn sim(n: u64, grain: u64, p: usize, lb: bool, placement: Placement) -> (u64, f64, u64) {
    let machine = MachineConfig::builder(p)
        .load_balancing(lb)
        .seed(1234)
        .observe(out::observe_opts())
        .backend(out::backend())
        .parallelism(out::parallelism()).build().unwrap();
    let cfg = FibConfig { n, grain, placement };
    let label = format!("fib n={n} p={p} lb={lb} {placement:?}");
    let (v, r) = out::timed(label, || run_sim(machine, cfg));
    (v, r.makespan.as_secs_f64(), r.stats.get("steal.granted"))
}

fn main() {
    out::note_tags("fib", hal_workloads::fib::FibMsg::TAGS);
    banner(
        "Table 4: Fibonacci execution times (virtual seconds, simulated CM-5)",
        "noLB = no balancing, work stays where it is created (the paper's\n\
         elided creations are local); static = a priori random placement\n\
         (extra baseline); LB = receiver-initiated random polling (\u{a7}7.2).\n\
         'C 1node' = the 744 ns/node sequential cost (from the paper's\n\
         8.49 s fib(33) on one SPARC).",
    );

    let configs: &[(u64, u64)] = if out::quick() {
        &[(20, 10)]
    } else {
        &[(24, 10), (28, 12), (30, 14)]
    };
    let widths = [6usize, 7, 4, 12, 12, 12, 9, 10];
    header(
        &["n", "grain", "P", "noLB (s)", "static (s)", "LB (s)", "steals", "C 1node(s)"],
        &widths,
    );
    for &(n, grain) in configs {
        let c_seconds = (call_tree_nodes(n) * SEQ_NODE_COST_NS) as f64 / 1e9;
        for &p in &[1usize, 4, 16, 64] {
            let (v_nolb, t_nolb, _) = sim(n, grain, p, false, Placement::Local);
            let (v_static, t_static, _) = sim(n, grain, p, false, Placement::Random);
            let (v_lb, t_lb, steals) = if p > 1 {
                sim(n, grain, p, true, Placement::Local)
            } else {
                (v_nolb, t_nolb, 0)
            };
            assert_eq!(v_nolb, hal_baselines::fib_iter(n));
            assert_eq!(v_lb, v_nolb);
            assert_eq!(v_static, v_nolb);
            row(
                &[
                    cell(n),
                    cell(grain),
                    cell(p),
                    secs(t_nolb),
                    secs(t_static),
                    secs(t_lb),
                    cell(steals),
                    secs(c_seconds),
                ],
                &widths,
            );
        }
    }

    // Host-baseline wall clocks fluctuate run to run, so they go to
    // stderr: stdout stays byte-identical across parallelism levels.
    let n_host = if out::quick() { 24u64 } else { 30 };
    let t0 = Instant::now();
    let v = fib(n_host);
    let t_seq = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let v2 = parallel_fib(n_host, 1, 16);
    let t_pool = t0.elapsed().as_secs_f64();
    assert_eq!(v, v2);
    eprintln!(
        "host baseline: sequential Rust fib({n_host})           : {:.3} s  ('optimized C' role)",
        t_seq
    );
    eprintln!(
        "host baseline: work-stealing pool fib({n_host}), 1 thr : {:.3} s  ('Cilk' role; single-CPU host)",
        t_pool
    );
    println!(
        "\nshape: LB recovers nearly all of static placement's parallelism\n\
         without any placement annotations, while noLB stays serial at every P;\n\
         the actor runtime's 1-node virtual time is within ~10% of the C cost\n\
         thanks to creation elision (grain) and cheap primitives."
    );
    out::finish("table4_fib");
}
