//! Machine-readable benchmark output + shared bench-bin switches.
//!
//! Every table bin records its simulation runs here and calls
//! [`finish`] at exit, which writes `results/BENCH_<bin>.json` next to
//! the human-readable `results/<bin>.txt` — virtual time, host wall
//! time, and events/sec throughput per run — so the performance
//! trajectory of the simulator itself is tracked from PR to PR.
//!
//! The module also owns the two switches every bin honors:
//!
//! * `--parallel[=K]` / `HAL_PARALLEL=K|auto` — windowed-executor host
//!   parallelism (`auto` or bare `--parallel` = all cores). Reports are
//!   bit-identical across K, so stdout does not change — only wall time.
//! * `--quick` / `HAL_QUICK=1` — shrink problem sizes so the bin
//!   finishes in seconds (CI smoke).
//! * `--backend=sim|live` / `HAL_BACKEND` — which [`hal_kernel::Backend`]
//!   the bin's machines run on ([`backend`]). The deterministic
//!   simulator is the default; `live` runs one real kernel per host
//!   thread, so virtual-time facts become host-time facts and the
//!   artifacts carry a `"backend": "live"` tag for the perf gate.
//! * `--check` / `HAL_CHECK=1` — run the `hal-check` protocol invariant
//!   checker over every recorded run. Bins opt their machines into the
//!   flight recorder via `.observe(out::observe_opts())`; [`finish`]
//!   then writes `results/CHECK_<bin>.json` and **exits nonzero** on any
//!   violation.
//! * `--spans` / `HAL_SPANS=1` — reconstruct message-lifecycle spans
//!   ([`hal_kernel::span`]) and the critical path (`hal-profile`) for
//!   every recorded run, asserting the critical path never exceeds the
//!   makespan, and write `results/SPANS_<bin>.json`. Implies tracing
//!   via [`trace_wanted`].
//! * `--metrics` / `HAL_METRICS=1` — enable the live metrics registry
//!   ([`hal_kernel::metrics`], folded into [`observe_opts`]) and write
//!   `results/METRICS_<bin>.json`.
//! * `--prof` / `HAL_PROF=1` — enable the host-time executor profiler
//!   ([`hal_kernel::prof`], folded into [`observe_opts`]) and
//!   write `results/PROF_<bin>.json` plus a Chrome-trace host timeline
//!   `results/PROF_<bin>_hosttrace.json` (one track per shard thread).
//!   Host-time facts live only in these two artifacts — unlike every
//!   other artifact family they are *expected* to differ run to run.
//!
//! Timing lines go to **stderr**: stdout stays byte-identical across
//! parallelism levels so `ci.sh` can diff sequential vs parallel runs.
//! The checker, span, and metrics passes write only to stderr and their
//! JSON files, so all three switches preserve that identity too — and
//! the JSON artifacts themselves carry only virtual-time facts, so they
//! are byte-identical across `--parallel K` as well.

use hal_check::CheckReport;
use hal_kernel::span::SpanReport;
use hal_kernel::{BackendKind, ObserveOpts, Selector, SimReport};
use hal_profile::critical_paths;
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// One recorded simulation run.
struct Run {
    label: String,
    virtual_ns: u64,
    events: u64,
    wall: Duration,
    /// Extra per-run counters (e.g. chaos delivery stats), emitted
    /// verbatim into the JSON record.
    extras: Vec<(String, u64)>,
}

static RUNS: Mutex<Vec<Run>> = Mutex::new(Vec::new());

/// Violations accumulated across this process's checked runs.
static CHECK: Mutex<Option<CheckReport>> = Mutex::new(None);

/// Per-run JSON fragments accumulated for `results/SPANS_<bin>.json`
/// (label, composed span + critical-path object).
static SPANS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Per-run JSON fragments accumulated for `results/METRICS_<bin>.json`.
static METRICS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Per-run JSON fragments accumulated for `results/PROF_<bin>.json`
/// (label, [`hal_kernel::ProfReport::to_json`] object).
static PROF: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Per-run Chrome trace-event fragments for
/// `results/PROF_<bin>_hosttrace.json` (one `pid` per run).
static PROF_TRACE: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// The executor parallelism requested for this process: `--parallel`
/// (bare or `--parallel=K`) on the command line, else the
/// `HAL_PARALLEL` environment variable (`auto` or a thread count),
/// else `1` (sequential reference). `0` means "all available cores"
/// (the [`hal_kernel::MachineConfigBuilder::parallelism`] convention).
///
/// A K above `std::thread::available_parallelism()` is capped to it
/// (with a stderr note): oversubscribed shard threads only measure
/// scheduler churn, not the executor. Set `HAL_PARALLEL_FORCE=1` to run
/// the requested K anyway — the equivalence tests use real thread
/// counts regardless of host width, and CI smokes force specific K to
/// exercise the threaded paths on 1-core containers.
pub fn parallelism() -> usize {
    let requested = raw_parallelism();
    if requested <= 1 || std::env::var("HAL_PARALLEL_FORCE").is_ok() {
        return requested;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if requested > cores {
        eprintln!(
            "note: requested parallelism {requested} exceeds the {cores} available core(s); \
             capping at {cores} (set HAL_PARALLEL_FORCE=1 to oversubscribe anyway)"
        );
        return cores;
    }
    requested
}

fn raw_parallelism() -> usize {
    for arg in std::env::args().skip(1) {
        if arg == "--parallel" {
            return 0;
        }
        if let Some(v) = arg.strip_prefix("--parallel=") {
            return parse_parallelism(v);
        }
    }
    match std::env::var("HAL_PARALLEL") {
        Ok(v) => parse_parallelism(&v),
        Err(_) => 1,
    }
}

fn parse_parallelism(v: &str) -> usize {
    if v.eq_ignore_ascii_case("auto") {
        return 0;
    }
    v.parse()
        .unwrap_or_else(|_| panic!("bad parallelism {v:?}: expected a thread count or \"auto\""))
}

/// Which backend this process's machines run on: `--backend=sim|live`
/// on the command line, else the `HAL_BACKEND` environment variable,
/// else the deterministic simulator. Bins pass this to
/// [`hal_kernel::MachineConfigBuilder::backend`]; under `live` the
/// virtual-time facts in every artifact are host-time facts and carry a
/// `"backend": "live"` tag so downstream tooling (the perf gate) knows
/// not to expect determinism.
pub fn backend() -> BackendKind {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--backend=") {
            return v.parse().unwrap_or_else(|e| panic!("{e}"));
        }
    }
    match std::env::var("HAL_BACKEND") {
        Ok(v) => v.parse().unwrap_or_else(|e| panic!("{e}")),
        Err(_) => BackendKind::Sim,
    }
}

/// The observability options implied by this process's switches — what
/// bins feed to [`hal_kernel::MachineConfigBuilder::observe`]: flight
/// recording when the checker or span pass needs it, metrics under
/// `--metrics`, host profiling under `--prof`.
pub fn observe_opts() -> ObserveOpts {
    ObserveOpts::none()
        .trace(trace_wanted())
        .metrics(metrics_enabled())
        .prof(prof_enabled())
}

/// True when the bin should shrink its problem sizes to finish in
/// seconds: `--quick` on the command line or `HAL_QUICK` set.
pub fn quick() -> bool {
    std::env::args().skip(1).any(|a| a == "--quick") || std::env::var("HAL_QUICK").is_ok()
}

/// True when the protocol checker should run over every recorded run:
/// `--check` on the command line or `HAL_CHECK` set. Folded into
/// [`observe_opts`] (via [`trace_wanted`]) so the trace pass has events
/// to look at; the audit pass works either way.
pub fn check_enabled() -> bool {
    std::env::args().skip(1).any(|a| a == "--check") || std::env::var("HAL_CHECK").is_ok()
}

/// True when lifecycle spans + critical-path analysis should run over
/// every recorded run: `--spans` on the command line or `HAL_SPANS`
/// set.
pub fn spans_enabled() -> bool {
    std::env::args().skip(1).any(|a| a == "--spans") || std::env::var("HAL_SPANS").is_ok()
}

/// True when the live metrics registry should be enabled: `--metrics`
/// on the command line or `HAL_METRICS` set. Folded into
/// [`observe_opts`].
pub fn metrics_enabled() -> bool {
    std::env::args().skip(1).any(|a| a == "--metrics") || std::env::var("HAL_METRICS").is_ok()
}

/// True when the host-time executor profiler should be enabled:
/// `--prof` on the command line or `HAL_PROF` set. Folded into
/// [`observe_opts`].
pub fn prof_enabled() -> bool {
    std::env::args().skip(1).any(|a| a == "--prof") || std::env::var("HAL_PROF").is_ok()
}

/// True when the flight recorder is needed by any enabled pass — folded
/// into [`observe_opts`].
pub fn trace_wanted() -> bool {
    check_enabled() || spans_enabled()
}

fn with_check(f: impl FnOnce(&mut CheckReport)) {
    let mut guard = CHECK.lock().expect("bench check lock");
    f(guard.get_or_insert_with(|| CheckReport::new("bench")));
}

/// Feed one message protocol's `(variant, selector)` table (the `TAGS`
/// const generated by hal's `messages!` macro) to the checker's static
/// tag pass. No-op unless [`check_enabled`].
pub fn note_tags(protocol: &str, tags: &[(&str, Selector)]) {
    if check_enabled() {
        with_check(|c| hal_check::check_tags(protocol, tags, c));
    }
}

/// Record one simulation run under `label`. `wall` is the host
/// wall-clock time of the `run()` call.
pub fn note_run(label: impl Into<String>, report: &SimReport, wall: Duration) {
    note_run_with(label, report, wall, &[]);
}

/// Like [`note_run`] but with extra named counters attached to the JSON
/// record — chaos bins use this for delivered/retransmit/duplicate
/// counts.
pub fn note_run_with(
    label: impl Into<String>,
    report: &SimReport,
    wall: Duration,
    extras: &[(&str, u64)],
) {
    let label = label.into();
    if check_enabled() {
        with_check(|c| hal_check::check_sim_report(&label, report, c));
    }
    if let Some(trace) = &report.trace {
        if trace.dropped > 0 {
            eprintln!(
                "WARNING {label}: trace ring dropped {} event(s) — spans and histograms are partial",
                trace.dropped
            );
        }
    }
    if let Some(m) = &report.metrics {
        let dropped = m.counter("metrics.dropped_samples");
        if dropped > 0 {
            eprintln!(
                "WARNING {label}: metrics sampler dropped {dropped} gauge sample(s) — timeseries are partial"
            );
        }
    }
    if let Some(prof) = &report.prof {
        let (top, frac) = prof.top_overhead();
        eprintln!(
            "PROFLINE {label} mode={} k={} wall_ms={:.3} top_overhead={top} top_overhead_pct={:.1}",
            prof.mode,
            prof.k,
            prof.wall_ns as f64 / 1e6,
            100.0 * frac
        );
        let mut runs = PROF.lock().expect("bench prof lock");
        let pid = runs.len();
        runs.push((
            label.clone(),
            format!(
                "{{\"label\": \"{}\", \"prof\": {}}}",
                json_escape(&label),
                prof.to_json()
            ),
        ));
        PROF_TRACE
            .lock()
            .expect("bench prof trace lock")
            .push(prof.chrome_events(pid, &label));
    }
    if spans_enabled() {
        if let Some(trace) = &report.trace {
            let spans = SpanReport::build(trace);
            let cp = critical_paths(&spans, 5);
            let makespan_ns = report.makespan.as_nanos();
            if let Some(c) = cp.critical() {
                assert!(
                    c.total_ns <= makespan_ns,
                    "{label}: critical path ({} ns) exceeds the makespan ({makespan_ns} ns) — \
                     span reconstruction is broken",
                    c.total_ns
                );
            }
            eprintln!(
                "SPANLINE {label} msgs={} critical_ns={} serial_fraction={:.3} chains={}",
                spans.msgs.len(),
                cp.critical().map_or(0, |c| c.total_ns),
                cp.ratio(makespan_ns),
                cp.chains.len()
            );
            let obj = format!(
                "{{\"label\": \"{}\", \"spans\": {}, \"critical_path\": {}}}",
                json_escape(&label),
                spans.to_json().trim_end(),
                cp.to_json(makespan_ns).trim_end()
            );
            SPANS.lock().expect("bench spans lock").push((label.clone(), obj));
        }
    }
    if metrics_enabled() {
        if let Some(m) = &report.metrics {
            let obj = format!(
                "{{\"label\": \"{}\", \"metrics\": {}}}",
                json_escape(&label),
                m.to_json(report.makespan.as_nanos()).trim_end()
            );
            METRICS.lock().expect("bench metrics lock").push((label.clone(), obj));
        }
    }
    let run = Run {
        label,
        virtual_ns: report.makespan.as_nanos(),
        events: report.events,
        wall,
        extras: extras.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    };
    eprintln!(
        "BENCHLINE {label} virtual_ms={vms:.3} wall_ms={wms:.3} events={ev} events_per_sec={eps:.0}",
        label = run.label,
        vms = run.virtual_ns as f64 / 1e6,
        wms = run.wall.as_secs_f64() * 1e3,
        ev = run.events,
        eps = events_per_sec(run.events, run.wall),
    );
    RUNS.lock().expect("bench out lock").push(run);
}

fn events_per_sec(events: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s > 0.0 {
        events as f64 / s
    } else {
        0.0
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write `results/BENCH_<bin>.json` from every run recorded so far and
/// print a total line to stderr. Call once, at the end of `main`.
pub fn finish(bin: &str) {
    let runs = std::mem::take(&mut *RUNS.lock().expect("bench out lock"));
    let (mut total_events, mut total_wall) = (0u64, Duration::ZERO);
    let mut body = String::new();
    for (i, r) in runs.iter().enumerate() {
        total_events += r.events;
        total_wall += r.wall;
        if i > 0 {
            body.push_str(",\n");
        }
        let extras: String = r
            .extras
            .iter()
            .map(|(k, v)| format!(", \"{}\": {}", json_escape(k), v))
            .collect();
        body.push_str(&format!(
            "    {{\"label\": \"{}\", \"virtual_ns\": {}, \"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}{}}}",
            json_escape(&r.label),
            r.virtual_ns,
            r.events,
            r.wall.as_nanos(),
            events_per_sec(r.events, r.wall),
            extras,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"backend\": \"{}\",\n  \"parallelism\": {},\n  \"runs\": [\n{}\n  ],\n  \"total_events\": {},\n  \"total_wall_ns\": {},\n  \"total_events_per_sec\": {:.0}\n}}\n",
        json_escape(bin),
        backend(),
        parallelism(),
        body,
        total_events,
        total_wall.as_nanos(),
        events_per_sec(total_events, total_wall),
    );
    let path = format!("results/BENCH_{bin}.json");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(&path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("bench out: writing {path} failed: {e}");
        return;
    }
    eprintln!(
        "BENCHTOTAL {bin} runs={n} wall_ms={wms:.3} events={ev} events_per_sec={eps:.0} json={path}",
        n = runs.len(),
        wms = total_wall.as_secs_f64() * 1e3,
        ev = total_events,
        eps = events_per_sec(total_events, total_wall),
    );

    if spans_enabled() {
        let runs = std::mem::take(&mut *SPANS.lock().expect("bench spans lock"));
        write_artifact(&format!("results/SPANS_{bin}.json"), "SPANSFILE", bin, &runs);
    }
    if metrics_enabled() {
        let runs = std::mem::take(&mut *METRICS.lock().expect("bench metrics lock"));
        write_artifact(&format!("results/METRICS_{bin}.json"), "METRICSFILE", bin, &runs);
    }
    if prof_enabled() {
        write_prof_artifacts(bin);
    }

    if check_enabled() {
        let mut report = CHECK
            .lock()
            .expect("bench check lock")
            .take()
            .unwrap_or_else(|| CheckReport::new(bin));
        report.subject = bin.to_string();
        let check_path = format!("results/CHECK_{bin}.json");
        if let Err(e) = report.write_json(&check_path) {
            eprintln!("bench out: writing {check_path} failed: {e}");
        }
        eprint!("{}", report.summary());
        eprintln!("CHECKFILE {check_path}");
        if !report.is_clean() {
            eprintln!("CHECKFAIL {bin}: {} violation(s)", report.violations.len());
            std::process::exit(1);
        }
    }
}

/// Write the two host-time profile artifacts: `results/PROF_<bin>.json`
/// (per-run [`hal_kernel::ProfReport`] objects under a host header) and
/// `results/PROF_<bin>_hosttrace.json` (a Chrome trace-event array, one
/// `pid` per run, one `tid` per shard thread — load in
/// `chrome://tracing` / Perfetto).
fn write_prof_artifacts(bin: &str) {
    let runs = std::mem::take(&mut *PROF.lock().expect("bench prof lock"));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = String::new();
    for (i, (_, obj)) in runs.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str("    ");
        body.push_str(obj);
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"parallelism\": {},\n  \"host_cores\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_escape(bin),
        parallelism(),
        host_cores,
        body
    );
    let path = format!("results/PROF_{bin}.json");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(&path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("bench out: writing {path} failed: {e}");
        return;
    }
    eprintln!("PROFFILE {path}");

    let traces = std::mem::take(&mut *PROF_TRACE.lock().expect("bench prof trace lock"));
    let trace_path = format!("results/PROF_{bin}_hosttrace.json");
    let trace_json = format!("[{}]\n", traces.join(",\n"));
    if let Err(e) = std::fs::File::create(&trace_path)
        .and_then(|mut f| f.write_all(trace_json.as_bytes()))
    {
        eprintln!("bench out: writing {trace_path} failed: {e}");
        return;
    }
    eprintln!("PROFTRACE {trace_path}");
}

/// Write one per-run JSON artifact (`SPANS_*` / `METRICS_*`) and print
/// its stderr marker line.
fn write_artifact(path: &str, marker: &str, bin: &str, runs: &[(String, String)]) {
    let mut body = String::new();
    for (i, (_, obj)) in runs.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str("    ");
        body.push_str(obj);
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        json_escape(bin),
        body
    );
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("bench out: writing {path} failed: {e}");
        return;
    }
    eprintln!("{marker} {path}");
}

/// Time `f` and record its report under `label` — the common wrapper
/// for `run_sim`-style calls returning `(value, SimReport)`.
pub fn timed<T>(label: impl Into<String>, f: impl FnOnce() -> (T, SimReport)) -> (T, SimReport) {
    let t0 = std::time::Instant::now();
    let (v, report) = f();
    note_run(label, &report, t0.elapsed());
    (v, report)
}
