//! Machine-readable benchmark output + shared bench-bin switches.
//!
//! Every table bin records its simulation runs here and calls
//! [`finish`] at exit, which writes `results/BENCH_<bin>.json` next to
//! the human-readable `results/<bin>.txt` — virtual time, host wall
//! time, and events/sec throughput per run — so the performance
//! trajectory of the simulator itself is tracked from PR to PR.
//!
//! The module also owns the two switches every bin honors:
//!
//! * `--parallel[=K]` / `HAL_PARALLEL=K|auto` — windowed-executor host
//!   parallelism (`auto` or bare `--parallel` = all cores). Reports are
//!   bit-identical across K, so stdout does not change — only wall time.
//! * `--quick` / `HAL_QUICK=1` — shrink problem sizes so the bin
//!   finishes in seconds (CI smoke).
//!
//! Timing lines go to **stderr**: stdout stays byte-identical across
//! parallelism levels so `ci.sh` can diff sequential vs parallel runs.

use hal_kernel::SimReport;
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// One recorded simulation run.
struct Run {
    label: String,
    virtual_ns: u64,
    events: u64,
    wall: Duration,
    /// Extra per-run counters (e.g. chaos delivery stats), emitted
    /// verbatim into the JSON record.
    extras: Vec<(String, u64)>,
}

static RUNS: Mutex<Vec<Run>> = Mutex::new(Vec::new());

/// The executor parallelism requested for this process: `--parallel`
/// (bare or `--parallel=K`) on the command line, else the
/// `HAL_PARALLEL` environment variable (`auto` or a thread count),
/// else `1` (sequential reference). `0` means "all available cores"
/// (the [`hal_kernel::MachineConfigBuilder::parallelism`] convention).
pub fn parallelism() -> usize {
    for arg in std::env::args().skip(1) {
        if arg == "--parallel" {
            return 0;
        }
        if let Some(v) = arg.strip_prefix("--parallel=") {
            return parse_parallelism(v);
        }
    }
    match std::env::var("HAL_PARALLEL") {
        Ok(v) => parse_parallelism(&v),
        Err(_) => 1,
    }
}

fn parse_parallelism(v: &str) -> usize {
    if v.eq_ignore_ascii_case("auto") {
        return 0;
    }
    v.parse()
        .unwrap_or_else(|_| panic!("bad parallelism {v:?}: expected a thread count or \"auto\""))
}

/// True when the bin should shrink its problem sizes to finish in
/// seconds: `--quick` on the command line or `HAL_QUICK` set.
pub fn quick() -> bool {
    std::env::args().skip(1).any(|a| a == "--quick") || std::env::var("HAL_QUICK").is_ok()
}

/// Record one simulation run under `label`. `wall` is the host
/// wall-clock time of the `run()` call.
pub fn note_run(label: impl Into<String>, report: &SimReport, wall: Duration) {
    note_run_with(label, report, wall, &[]);
}

/// Like [`note_run`] but with extra named counters attached to the JSON
/// record — chaos bins use this for delivered/retransmit/duplicate
/// counts.
pub fn note_run_with(
    label: impl Into<String>,
    report: &SimReport,
    wall: Duration,
    extras: &[(&str, u64)],
) {
    let run = Run {
        label: label.into(),
        virtual_ns: report.makespan.as_nanos(),
        events: report.events,
        wall,
        extras: extras.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    };
    eprintln!(
        "BENCHLINE {label} virtual_ms={vms:.3} wall_ms={wms:.3} events={ev} events_per_sec={eps:.0}",
        label = run.label,
        vms = run.virtual_ns as f64 / 1e6,
        wms = run.wall.as_secs_f64() * 1e3,
        ev = run.events,
        eps = events_per_sec(run.events, run.wall),
    );
    RUNS.lock().expect("bench out lock").push(run);
}

fn events_per_sec(events: u64, wall: Duration) -> f64 {
    let s = wall.as_secs_f64();
    if s > 0.0 {
        events as f64 / s
    } else {
        0.0
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write `results/BENCH_<bin>.json` from every run recorded so far and
/// print a total line to stderr. Call once, at the end of `main`.
pub fn finish(bin: &str) {
    let runs = std::mem::take(&mut *RUNS.lock().expect("bench out lock"));
    let (mut total_events, mut total_wall) = (0u64, Duration::ZERO);
    let mut body = String::new();
    for (i, r) in runs.iter().enumerate() {
        total_events += r.events;
        total_wall += r.wall;
        if i > 0 {
            body.push_str(",\n");
        }
        let extras: String = r
            .extras
            .iter()
            .map(|(k, v)| format!(", \"{}\": {}", json_escape(k), v))
            .collect();
        body.push_str(&format!(
            "    {{\"label\": \"{}\", \"virtual_ns\": {}, \"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}{}}}",
            json_escape(&r.label),
            r.virtual_ns,
            r.events,
            r.wall.as_nanos(),
            events_per_sec(r.events, r.wall),
            extras,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"{}\",\n  \"parallelism\": {},\n  \"runs\": [\n{}\n  ],\n  \"total_events\": {},\n  \"total_wall_ns\": {},\n  \"total_events_per_sec\": {:.0}\n}}\n",
        json_escape(bin),
        parallelism(),
        body,
        total_events,
        total_wall.as_nanos(),
        events_per_sec(total_events, total_wall),
    );
    let path = format!("results/BENCH_{bin}.json");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::File::create(&path))
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        eprintln!("bench out: writing {path} failed: {e}");
        return;
    }
    eprintln!(
        "BENCHTOTAL {bin} runs={n} wall_ms={wms:.3} events={ev} events_per_sec={eps:.0} json={path}",
        n = runs.len(),
        wms = total_wall.as_secs_f64() * 1e3,
        ev = total_events,
        eps = events_per_sec(total_events, total_wall),
    );
}

/// Time `f` and record its report under `label` — the common wrapper
/// for `run_sim`-style calls returning `(value, SimReport)`.
pub fn timed<T>(label: impl Into<String>, f: impl FnOnce() -> (T, SimReport)) -> (T, SimReport) {
    let t0 = std::time::Instant::now();
    let (v, report) = f();
    note_run(label, &report, t0.elapsed());
    (v, report)
}
