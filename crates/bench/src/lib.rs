//! # hal-bench — harnesses regenerating the paper's tables and figures
//!
//! One binary per evaluation artifact (see `src/bin/`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_cholesky` | Table 1 — Cholesky variants (BP/CP/Seq/Bcast) + flow-control ablation |
//! | `table2_primitives` | Table 2 — runtime primitive costs (simulated µs) |
//! | `table3_invocation` | Table 3 — method-invocation cost ladder |
//! | `table4_fib` | Table 4 — fib with/without load balancing + baselines |
//! | `table5_matmul` | Table 5 — systolic matmul times and MFLOPS |
//! | `fig3_delivery` | Fig. 3 — FIR message delivery under migration |
//!
//! The benches in `benches/` measure the *real* (host) nanosecond cost
//! of the primitive operations, complementing the simulated
//! CM-5-calibrated microseconds the binaries report. They run on the
//! in-tree [`harness`] so the workspace carries no external
//! dependencies and builds offline.

#![warn(missing_docs)]

pub mod harness;
pub mod out;

use std::fmt::Display;

/// Print a formatted table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

/// Print a header row plus underline.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    row(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        widths,
    );
}

/// Format a cell.
pub fn cell(v: impl Display) -> String {
    format!("{v}")
}

/// Format seconds with 3 decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format milliseconds with 2 decimals.
pub fn ms(s: f64) -> String {
    format!("{:.2}", s * 1e3)
}

/// Format microseconds with 2 decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1e3)
}

/// Standard banner naming the artifact being reproduced.
pub fn banner(title: &str, note: &str) {
    println!("\n== {title} ==");
    if !note.is_empty() {
        println!("{note}");
    }
    println!();
}
