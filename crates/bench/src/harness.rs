//! A minimal wall-clock micro-benchmark harness (criterion stand-in).
//!
//! The workspace must build and test offline, so the host-nanosecond
//! benches in `benches/` run on this ~100-line harness instead of an
//! external framework: warm up, auto-calibrate an iteration count to a
//! target sample duration, take several samples, report the median
//! per-iteration time. Invoke with `cargo bench [filter]`; a positional
//! argument selects benchmarks by substring.

use std::time::{Duration, Instant};

/// Target wall-clock per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 7;

/// Passed to each benchmark closure; call [`Bencher::iter`] (or
/// [`Bencher::iter_batched`]) with the routine to measure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Measure `f`, storing the median per-iteration time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm up and calibrate: how many iterations fill one sample?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }

    /// Measure `routine` over fresh state from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let t0 = Instant::now();
        std::hint::black_box(routine(setup()));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for s in inputs {
                std::hint::black_box(routine(s));
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

/// The top-level harness: owns the name filter and prints one line per
/// benchmark.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build from `std::env::args`: the first non-flag argument is a
    /// substring filter (flags like `--bench` that cargo passes are
    /// ignored).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// True if `name` passes the filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark and print its median per-iteration time.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if !self.selected(name) {
            return;
        }
        let mut b = Bencher { result_ns: 0.0 };
        f(&mut b);
        if b.result_ns >= 10_000.0 {
            println!("{name:<44} {:>12.2} µs/iter", b.result_ns / 1e3);
        } else {
            println!("{name:<44} {:>12.1} ns/iter", b.result_ns);
        }
    }

    /// A named group: benchmark names get a `group/` prefix, mirroring
    /// the criterion convention the result files used.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: name.to_string(),
        }
    }
}

/// A benchmark group created by [`Harness::group`].
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Run one benchmark under the group prefix.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        self.harness.bench_function(&full, f);
    }

    /// Accepted for criterion-API compatibility; sampling here is
    /// duration-driven, so the count is ignored.
    pub fn sample_size(&mut self, _n: usize) {}

    /// No-op terminator (criterion-API compatibility).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        let mut b = Bencher { result_ns: 0.0 };
        b.iter(|| std::hint::black_box(1u64 + 2));
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn filter_selects_by_substring() {
        let h = Harness { filter: Some("name_server".into()) };
        assert!(h.selected("name_server/resolve"));
        assert!(!h.selected("send_paths/local"));
        let h = Harness { filter: None };
        assert!(h.selected("anything"));
    }
}
