//! Reference-counted byte buffers for bulk payloads.
//!
//! The runtime previously pulled in the `bytes` crate for this; a full
//! zero-copy slicing API is unnecessary here — bulk payloads (matrix
//! blocks, migration images) are built once and then only cloned and
//! read — so this module carries a minimal `Arc<[u8]>` wrapper instead,
//! keeping the workspace free of external dependencies (tier-1 verify
//! must run with no network access). [`Cursor`] is the matching reader
//! for the little-endian wire encodings the workloads use.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (`Arc<[u8]>` underneath).
///
/// Cloning copies a pointer, not the payload — the simulator passes
/// matrix blocks between "nodes" without duplicating them, exactly as
/// the refcounted `bytes::Bytes` did.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// A [`Cursor`] positioned at the start of the buffer.
    pub fn reader(&self) -> Cursor<'_> {
        Cursor::new(&self.0)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Payloads can be megabytes; show length plus a short prefix.
        let prefix: Vec<u8> = self.0.iter().copied().take(8).collect();
        if self.0.len() > 8 {
            write!(f, "Bytes({} bytes, {:02x?}…)", self.0.len(), prefix)
        } else {
            write!(f, "Bytes({:02x?})", prefix)
        }
    }
}

/// A little-endian reader over a byte slice, panicking on underrun (a
/// marshalling bug must be loud, matching the `Value` accessors).
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8; 1 << 20]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn deref_and_len() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..2], &[1, 2]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn cursor_reads_little_endian() {
        let mut v = Vec::new();
        v.extend_from_slice(&7u64.to_le_bytes());
        v.extend_from_slice(&2.5f64.to_le_bytes());
        v.extend_from_slice(&9u32.to_le_bytes());
        let b = Bytes::from(v);
        let mut r = b.reader();
        assert_eq!(r.get_u64(), 7);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.get_u32(), 9);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn cursor_underrun_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        b.reader().get_u64();
    }
}
