//! Sender-side state machine for the three-phase bulk protocol (§6.5).
//!
//! Active messages are not buffered at the receiver, so bulk data cannot
//! be injected eagerly: the sender first announces the transfer with a
//! `BulkRequest`, waits for the receiver's `BulkAck` (issued under
//! [`crate::flow::FlowControl`]), and only then transmits the `BulkData`
//! packet. [`BulkSender`] parks the payload between phases 1 and 3.

use crate::packet::{AmEnvelope, BulkTag, NodeId};
use std::collections::HashMap;

/// A parked outbound transfer awaiting its grant.
#[derive(Debug)]
struct Parked<P> {
    dst: NodeId,
    body: P,
    bytes: usize,
}

/// Sender-side bookkeeping for in-progress bulk transfers.
#[derive(Debug)]
pub struct BulkSender<P> {
    parked: HashMap<BulkTag, Parked<P>>,
    next_tag: BulkTag,
    started: u64,
    completed: u64,
}

impl<P> BulkSender<P> {
    /// Fresh sender. `node` seeds the tag space so tags are globally
    /// unique (useful in traces; correctness only needs per-sender
    /// uniqueness since receivers match on `(src, tag)`).
    pub fn new(node: NodeId) -> Self {
        BulkSender {
            parked: HashMap::new(),
            next_tag: (node as u64) << 48,
            started: 0,
            completed: 0,
        }
    }

    /// Begin a transfer of `body` (`bytes` on the wire) to `dst`.
    ///
    /// Parks the payload and returns `(tag, request_envelope)`; the caller
    /// injects the request envelope to `dst`.
    pub fn begin(&mut self, dst: NodeId, body: P, bytes: usize) -> (BulkTag, AmEnvelope<P>) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.started += 1;
        self.parked.insert(tag, Parked { dst, body, bytes });
        (tag, AmEnvelope::BulkRequest { tag, bytes })
    }

    /// A `BulkAck` for `tag` arrived: un-park the payload and return the
    /// destination plus the data envelope to inject.
    ///
    /// # Panics
    /// Panics on an unknown tag — an ack we never requested means protocol
    /// corruption, which we surface immediately.
    pub fn on_ack(&mut self, tag: BulkTag) -> (NodeId, AmEnvelope<P>, usize) {
        let parked = self
            .parked
            .remove(&tag)
            .expect("BulkAck for a tag with no parked transfer");
        self.completed += 1;
        let bytes = parked.bytes;
        (
            parked.dst,
            AmEnvelope::BulkData {
                tag,
                body: parked.body,
                bytes,
            },
            bytes,
        )
    }

    /// Transfers announced but not yet granted.
    pub fn in_progress(&self) -> usize {
        self.parked.len()
    }

    /// Total transfers begun (diagnostics).
    pub fn started_total(&self) -> u64 {
        self.started
    }

    /// Total transfers whose data phase was released (diagnostics).
    pub fn completed_total(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowControl;

    #[test]
    fn three_phase_roundtrip() {
        let mut tx = BulkSender::new(0);
        let (tag, req) = tx.begin(1, vec![1u8, 2, 3], 3);
        assert!(matches!(req, AmEnvelope::BulkRequest { bytes: 3, .. }));
        assert_eq!(tx.in_progress(), 1);

        let (dst, data, bytes) = tx.on_ack(tag);
        assert_eq!(dst, 1);
        assert_eq!(bytes, 3);
        match data {
            AmEnvelope::BulkData { body, bytes, .. } => {
                assert_eq!(body, vec![1, 2, 3]);
                assert_eq!(bytes, 3);
            }
            other => panic!("expected BulkData, got {other:?}"),
        }
        assert_eq!(tx.in_progress(), 0);
    }

    #[test]
    fn tags_are_unique_and_node_scoped() {
        let mut a = BulkSender::new(1);
        let mut b = BulkSender::new(2);
        let (t1, _) = a.begin(0, (), 1);
        let (t2, _) = a.begin(0, (), 1);
        let (t3, _) = b.begin(0, (), 1);
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(t1 >> 48, 1);
        assert_eq!(t3 >> 48, 2);
    }

    #[test]
    #[should_panic(expected = "no parked transfer")]
    fn unknown_ack_panics() {
        let mut tx = BulkSender::<()>::new(0);
        tx.on_ack(12345);
    }

    /// Drive sender + receiver state machines together through a full
    /// pipeline of transfers and verify end-to-end payload delivery with
    /// the single-active-grant invariant.
    #[test]
    fn pipelined_transfers_deliver_in_grant_order() {
        let mut tx = BulkSender::new(0);
        let mut fc = FlowControl::new();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 8]).collect();

        // Sender announces everything up front (software pipelining).
        let mut acks = Vec::new();
        for p in &payloads {
            let (tag, _req) = tx.begin(1, p.clone(), p.len());
            if let Some(g) = fc.on_request(0, tag) {
                acks.push(g);
            }
        }

        let mut delivered = Vec::new();
        while let Some(grant) = acks.pop() {
            let (_dst, data, _) = tx.on_ack(grant.tag);
            if let AmEnvelope::BulkData { tag, body, .. } = data {
                delivered.push(body);
                if let Some(next) = fc.on_data_complete(0, tag) {
                    acks.push(next);
                }
            }
        }
        assert_eq!(delivered, payloads, "in-order, exactly-once delivery");
        assert_eq!(tx.completed_total(), 10);
        assert_eq!(fc.granted_total(), 10);
    }
}
