//! # hal-am — active-message layer (CMAM substitute)
//!
//! The communication module of the HAL runtime (Kim & Agha, SC '95, §3)
//! was built on **CMAM**, the CM-5 active-message layer of von Eicken et
//! al.: unbuffered small messages carrying a handler and a few words, a
//! three-phase protocol for bulk data, and point-to-point sends composed
//! into a hypercube-like spanning tree for broadcast.
//!
//! This crate reproduces that layer over two interchangeable substrates:
//!
//! * [`sim::SimNetwork`] — deterministic delivery through the
//!   discrete-event engine (`hal-des`), with a CM-5-calibrated
//!   latency/bandwidth model, per-link FIFO, and injection serialization.
//!   All paper-table benchmarks run here.
//! * [`thread`] — one OS thread per node over `std::sync::mpsc`
//!   channels, used by examples and concurrency tests.
//!
//! Protocol state machines are substrate-independent and pure:
//!
//! * [`bulk::BulkSender`] + [`flow::FlowControl`] — the three-phase bulk
//!   transfer with the paper's minimal flow control (§6.5): one active
//!   transfer per receiving node;
//! * [`bcast`] — the binomial spanning-tree broadcast schedule (§6.4).

#![warn(missing_docs)]

pub mod bcast;
pub mod bulk;
pub mod bytes;
pub mod fault;
pub mod flow;
pub mod packet;
pub mod reliable;
pub mod sim;
pub mod thread;

pub use bulk::BulkSender;
pub use bytes::Bytes;
pub use fault::{FaultPlan, LinkOutage, NodePause};
pub use flow::{FlowControl, Grant};
pub use packet::{AmEnvelope, BulkTag, NodeId, Packet, RelPayload, MAX_SMALL_BYTES, REL_HEADER};
pub use reliable::{RelReceiver, RelSender, RetxDecision, RxOutcome, SendTicket, RETX_BATCH};
pub use sim::{Admitted, DupCloneFailed, Fate, LinkModel, LinkState, SimNetwork};
pub use thread::{thread_network, thread_network_bounded, ThreadEndpoint, ThreadNetStats};
