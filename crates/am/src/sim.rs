//! The simulated network: packet delivery through the discrete-event queue.
//!
//! This is the benchmark substrate standing in for the CM-5's fat-tree.
//! The model is deliberately simple and deterministic:
//!
//! * each packet pays a fixed **wire latency** plus a **per-byte** cost
//!   (bandwidth term), calibrated against CMAM measurements;
//! * each ordered node pair `(src, dst)` is a FIFO *link*: a packet may
//!   not arrive before an earlier packet on the same link (CMAM/fat-tree
//!   routes preserve per-pair ordering for our purposes, and the kernel's
//!   protocols rely on it the same way the paper's implementation does);
//! * each source serializes injection: the network interface can inject
//!   one packet at a time, so back-to-back sends queue at the NI. This is
//!   what makes the *no-flow-control* Cholesky ablation congest, as the
//!   paper observed (§6.5).
//!
//! Contention inside the fabric is **not** modeled beyond these two
//! serialization points; the paper's claims we reproduce do not depend on
//! fabric hot-spots.

use crate::fault::{FaultPlan, FaultState, RawFate};
use crate::packet::{AmEnvelope, NodeId, Packet};
use hal_des::{EventQueue, StatSet, VirtualDuration, VirtualTime};
use std::collections::HashMap;

/// Timing parameters of the simulated interconnect.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// One-way wire latency for any packet (time of flight + routing).
    pub latency: VirtualDuration,
    /// Transmission time per payload byte (1/bandwidth).
    pub per_byte: VirtualDuration,
    /// Time the sending NI is busy injecting a packet (serializes
    /// back-to-back sends from one node).
    pub inject_overhead: VirtualDuration,
    /// Virtual-time depth of buffering the fabric tolerates toward one
    /// receiver before back-pressure stalls senders (wormhole routing
    /// has almost no elasticity; the CM-5 NI buffers a few packets).
    /// When a receiver's ejection backlog exceeds this window, further
    /// injections toward it block the *sender's* NI until the backlog
    /// drains — the "packet back-up in the network" of §6.5.
    pub backpressure_window: VirtualDuration,
}

impl LinkModel {
    /// CM-5 / CMAM-calibrated defaults.
    ///
    /// CMAM reports ~1.6 µs send overhead, a few µs one-way latency for a
    /// small message, and ~10 MB/s effective per-link bandwidth for bulk
    /// transfers (≈ 100 ns/byte). The paper's own remote-creation numbers
    /// (5.83 µs apparent vs 20.83 µs actual, §5) bound the one-way
    /// request latency at a few microseconds.
    pub fn cm5() -> Self {
        LinkModel {
            latency: VirtualDuration::from_nanos(3_000),
            per_byte: VirtualDuration::from_nanos(100),
            inject_overhead: VirtualDuration::from_nanos(600),
            // ~4 KB of in-fabric elasticity toward one receiver.
            backpressure_window: VirtualDuration::from_nanos(400_000),
        }
    }

    /// A network-of-workstations cluster (§9's future direction): the
    /// fast-interconnect NOW of Anderson/Culler/Patterson — ATM-class
    /// links with ~20x the CM-5's latency and a third of its per-link
    /// bandwidth, and far more elasticity (switched network with real
    /// buffers rather than a wormhole fabric).
    pub fn now_cluster() -> Self {
        LinkModel {
            latency: VirtualDuration::from_nanos(60_000),
            per_byte: VirtualDuration::from_nanos(300),
            inject_overhead: VirtualDuration::from_nanos(5_000),
            backpressure_window: VirtualDuration::from_millis(4),
        }
    }

    /// An idealized zero-cost network (unit tests of protocol logic).
    pub fn instant() -> Self {
        LinkModel {
            latency: VirtualDuration::ZERO,
            per_byte: VirtualDuration::ZERO,
            inject_overhead: VirtualDuration::ZERO,
            backpressure_window: VirtualDuration::from_millis(1_000_000),
        }
    }
}

/// One admitted injection: where the resource arithmetic placed it.
#[derive(Clone, Copy, Debug)]
pub struct Admitted {
    /// Scheduled arrival time at the destination's ejection port.
    pub arrival: VirtualTime,
    /// Global admission sequence number — the deterministic tie-breaker
    /// for packets arriving at the same virtual time.
    pub seq: u64,
    /// Time the sender's NI frees up (callers may charge it to the node
    /// clock).
    pub ni_free: VirtualTime,
    /// What the fault layer decided ([`Fate::Deliver`] when no fault
    /// plan is installed). The caller enqueues zero, one, or two copies
    /// accordingly.
    pub fate: Fate,
}

/// Delivery verdict of one admission, as seen by the enqueueing caller.
#[derive(Clone, Copy, Debug)]
pub enum Fate {
    /// Enqueue the packet at [`Admitted::arrival`] (a reordered packet
    /// also lands here — its arrival already includes the extra delay).
    Deliver,
    /// The fabric lost the packet: enqueue nothing. Sender-side costs
    /// ([`Admitted::ni_free`]) still apply.
    Dropped,
    /// The fabric duplicated the packet: enqueue the original at
    /// [`Admitted::arrival`] and, if the envelope is clonable
    /// ([`AmEnvelope::try_clone`]), a copy at the embedded arrival/seq.
    Duplicated {
        /// Arrival time of the duplicate copy.
        arrival: VirtualTime,
        /// Admission sequence number of the duplicate copy.
        seq: u64,
    },
}

/// A chaos duplication whose copy could not be materialized because the
/// envelope is not clonable (opaque one-shot payloads). Recorded — with
/// a stats counter — instead of silently dropping the duplicate, so
/// trace consumers (hal-check, metrics) can see it happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DupCloneFailed {
    /// Virtual arrival time the duplicate would have had.
    pub t: VirtualTime,
    /// Source node of the duplicated packet.
    pub src: NodeId,
    /// Destination node of the duplicated packet.
    pub dst: NodeId,
}

/// Recorded [`DupCloneFailed`] events are bounded; the stats counter
/// `net.fault_dup_unclonable` keeps the exact total.
pub const MAX_DUP_CLONE_RECORDS: usize = 64;

/// The network's resource state machine, separated from the event queue
/// so parallel executors can replay staged injections against it at
/// window barriers: per-(src,dst) FIFO links, per-source NI
/// serialization, per-destination ejection ports, and wormhole
/// back-pressure.
///
/// Injections may arrive **out of virtual-time order**: a node executing
/// a long actor method injects its sends at the method's completion
/// time, while interrupting node-manager handlers (§3's "steals the
/// processor") inject at packet-arrival times that can be earlier. Each
/// resource therefore remembers the virtual time of the injection that
/// set it, and only constrains injections that are *not before* it — an
/// earlier-time injection sees the resource as idle (which it truly was
/// at that moment).
pub struct LinkState {
    model: LinkModel,
    /// Per-(src, dst) link: (inject time that set it, last scheduled
    /// arrival) — enforces FIFO forward in time.
    link_last: HashMap<(NodeId, NodeId), (VirtualTime, VirtualTime)>,
    /// Per-source NI: (inject time that set it, time the NI frees up).
    ni_free: Vec<(VirtualTime, VirtualTime)>,
    /// Per-destination ejection port: (inject time that set it, time the
    /// port frees up). A hot receiver queues arrivals and, past the
    /// back-pressure window, stalls senders.
    eject_busy: Vec<(VirtualTime, VirtualTime)>,
    /// Next admission sequence number.
    seq: u64,
    /// Chaos duplications whose copy could not be cloned (bounded at
    /// [`MAX_DUP_CLONE_RECORDS`]; exact count in the stats).
    dup_unclonable: Vec<DupCloneFailed>,
    stats: StatSet,
    /// Fault machinery; `None` (the default) keeps the exact legacy
    /// admission path — zero RNG draws, byte-identical behavior.
    faults: Option<FaultState>,
}

impl LinkState {
    /// Resource state for `nodes` nodes under `model`.
    pub fn new(nodes: usize, model: LinkModel) -> Self {
        LinkState {
            model,
            link_last: HashMap::new(),
            ni_free: vec![(VirtualTime::ZERO, VirtualTime::ZERO); nodes],
            eject_busy: vec![(VirtualTime::ZERO, VirtualTime::ZERO); nodes],
            seq: 0,
            dup_unclonable: Vec::new(),
            stats: StatSet::new(),
            faults: None,
        }
    }

    /// Install a fault plan, seeding its RNG stream from the machine's
    /// master seed. A plan without link-level faults installs nothing,
    /// keeping the zero-overhead legacy path.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, seed: u64) {
        if plan.link_faults() {
            self.faults = Some(FaultState::new(plan.clone(), seed));
        }
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.ni_free.len()
    }

    /// The link model in force.
    pub fn model(&self) -> LinkModel {
        self.model
    }

    /// Network statistics (packet/byte counters).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// Admit one injection at virtual time `now`: run the full resource
    /// arithmetic (NI serialization, per-link FIFO, ejection port,
    /// back-pressure), commit the resource state, and return the
    /// scheduled arrival. The caller is responsible for enqueueing the
    /// packet at `Admitted::arrival` with `Admitted::seq` as the
    /// tie-breaker.
    ///
    /// Admission order is the order that matters for determinism: two
    /// replays that admit the same injections in the same order produce
    /// identical arrivals and sequence numbers.
    pub fn admit(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        wire_bytes: usize,
    ) -> Admitted {
        assert!(
            (src as usize) < self.ni_free.len() && (dst as usize) < self.ni_free.len(),
            "inject: node id out of range"
        );
        // Fault fate first: the decision consumes a fixed number of RNG
        // draws per admission (none when no plan is installed), so the
        // stream position depends only on the canonical admission order.
        let raw = match self.faults.as_mut() {
            Some(f) => f.decide(now, src, dst),
            None => RawFate::Deliver,
        };
        let dropped = matches!(raw, RawFate::Drop);
        let delayed = matches!(raw, RawFate::Delay(_));
        let xmit = self.model.per_byte.scaled(wire_bytes as u64);

        // NI injection serialization: a send cannot begin until the
        // previous one from this node has left the NI — unless this
        // injection is *earlier in virtual time* than the one that set
        // the state (an interrupt handler's send), in which case the NI
        // really was idle at `now`.
        let (ni_set_at, ni_busy) = self.ni_free[src as usize];
        let in_order = now >= ni_set_at;
        let begin = if in_order { now.max(ni_busy) } else { now };
        let mut ni_free = begin + self.model.inject_overhead + xmit;

        // Earliest possible arrival given wire latency…
        let mut arrival = ni_free + self.model.latency;
        // …but never before an earlier packet on the same (src,dst)
        // link (FIFO, applied forward in time) — unless the fault layer
        // reorders this packet, which is exactly a FIFO violation…
        if !delayed {
            if let Some(&(l_set, l_arr)) = self.link_last.get(&(src, dst)) {
                if now >= l_set {
                    arrival = arrival.max(l_arr);
                }
            }
        }
        // …and never before the receiver's ejection port frees up: a hot
        // receiver queues arrivals.
        let (e_set, e_busy) = self.eject_busy[dst as usize];
        if now >= e_set {
            arrival = arrival.max(e_busy);
        }
        if let RawFate::Delay(extra) = raw {
            arrival += extra;
        }
        // The ejection port is then busy draining this packet.
        let eject_done = arrival + self.model.per_byte.scaled(wire_bytes as u64);

        // Wormhole back-pressure: if the receiver's backlog exceeds the
        // elasticity window, the sender's NI blocks until it drains
        // (§6.5's "packet back-up in the network" reaching the sender).
        let backlog_release = VirtualTime::from_nanos(
            eject_done
                .as_nanos()
                .saturating_sub(self.model.backpressure_window.as_nanos()),
        );
        if backlog_release > ni_free {
            self.stats.bump("net.backpressure_stalls");
            ni_free = backlog_release;
        }

        // Commit resource state, never backward in virtual time. A
        // dropped packet spends the sender's NI but never reaches the
        // link or the ejection port; a reordered one bypasses the FIFO
        // state in both directions.
        if now >= ni_set_at {
            self.ni_free[src as usize] = (now, ni_free);
        }
        if !dropped && !delayed {
            let link = self.link_last.entry((src, dst)).or_insert((now, arrival));
            if now >= link.0 {
                *link = (now, arrival.max(link.1));
            }
        }
        if !dropped && now >= e_set {
            self.eject_busy[dst as usize] = (now, eject_done.max(e_busy));
        }

        self.stats.bump("net.packets");
        self.stats.add("net.bytes", wire_bytes as u64);
        let seq = self.seq;
        self.seq += 1;
        let fate = match raw {
            RawFate::Deliver => Fate::Deliver,
            RawFate::Delay(_) => {
                self.stats.bump("net.fault_reordered");
                Fate::Deliver
            }
            RawFate::Drop => {
                self.stats.bump("net.fault_dropped");
                Fate::Dropped
            }
            RawFate::Dup(extra) => {
                self.stats.bump("net.fault_duplicated");
                let seq2 = self.seq;
                self.seq += 1;
                Fate::Duplicated {
                    arrival: arrival + extra,
                    seq: seq2,
                }
            }
        };
        Admitted {
            arrival,
            seq,
            ni_free,
            fate,
        }
    }

    /// Record a chaos duplication whose copy could not be materialized:
    /// the envelope is a one-shot payload with no [`AmEnvelope::try_clone`]
    /// representation. Counted in `net.fault_dup_unclonable` and kept
    /// (bounded) for the trace-warning surface — the admission order is
    /// canonical, so the record list is deterministic across parallel K.
    pub fn note_dup_clone_failed(&mut self, t: VirtualTime, src: NodeId, dst: NodeId) {
        self.stats.bump("net.fault_dup_unclonable");
        if self.dup_unclonable.len() < MAX_DUP_CLONE_RECORDS {
            self.dup_unclonable.push(DupCloneFailed { t, src, dst });
        }
    }

    /// The recorded unclonable-duplicate events (bounded; see
    /// [`LinkState::note_dup_clone_failed`]).
    pub fn dup_clone_failures(&self) -> &[DupCloneFailed] {
        &self.dup_unclonable
    }

    /// Allocate a sequence number for a scheduler-level event (a timer)
    /// that bypasses the admission arithmetic entirely: no resources,
    /// no faults, no packet stats — just a deterministic tie-breaker
    /// from the same counter the admissions use.
    pub fn next_event_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }
}

/// The simulated network: a [`LinkState`] resource model plus the event
/// queue of in-flight packets. This is the facade the sequential
/// executor drives; the parallel executor disassembles it via
/// [`SimNetwork::into_parts`] and reassembles it at the end of a run.
pub struct SimNetwork<P> {
    queue: EventQueue<Packet<P>>,
    link: LinkState,
}

impl<P> SimNetwork<P> {
    /// A network connecting `nodes` nodes under `model`.
    pub fn new(nodes: usize, model: LinkModel) -> Self {
        Self::with_capacity(nodes, model, 1024)
    }

    /// A network with the event queue pre-sized for `cap` in-flight
    /// packets.
    pub fn with_capacity(nodes: usize, model: LinkModel, cap: usize) -> Self {
        SimNetwork {
            queue: EventQueue::with_capacity(cap),
            link: LinkState::new(nodes, model),
        }
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.link.nodes()
    }

    /// The link model in force.
    pub fn model(&self) -> LinkModel {
        self.link.model()
    }

    /// Inject a packet at virtual time `now`. Returns the time the sender's
    /// NI becomes free again (callers may charge that to the node clock).
    ///
    /// `wire_bytes` is the envelope's size on the wire; callers compute it
    /// via [`AmEnvelope::wire_bytes`] so the cost model sees serialized
    /// sizes, not in-memory ones.
    pub fn inject(
        &mut self,
        now: VirtualTime,
        src: NodeId,
        dst: NodeId,
        body: AmEnvelope<P>,
        wire_bytes: usize,
    ) -> VirtualTime {
        let adm = self.link.admit(now, src, dst, wire_bytes);
        match adm.fate {
            Fate::Dropped => {}
            Fate::Deliver => {
                self.queue
                    .push_at(adm.arrival, adm.seq, Packet { src, dst, body });
            }
            Fate::Duplicated { arrival, seq } => {
                match body.try_clone() {
                    Some(copy) => {
                        self.queue.push_at(arrival, seq, Packet { src, dst, body: copy });
                    }
                    None => self.link.note_dup_clone_failed(arrival, src, dst),
                }
                self.queue
                    .push_at(adm.arrival, adm.seq, Packet { src, dst, body });
            }
        }
        adm.ni_free
    }

    /// Install a fault plan on the link state (see
    /// [`LinkState::set_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: &crate::fault::FaultPlan, seed: u64) {
        self.link.set_fault_plan(plan, seed);
    }

    /// Schedule a self-addressed timer event to fire at `fire_at` on
    /// `node`. Timers go straight into the event queue — they consume
    /// no network resources and are immune to faults (a retransmit
    /// timer that could itself be dropped would defeat its purpose).
    pub fn schedule(&mut self, fire_at: VirtualTime, node: NodeId, body: AmEnvelope<P>) {
        let seq = self.link.next_event_seq();
        self.queue.push_at(
            fire_at,
            seq,
            Packet {
                src: node,
                dst: node,
                body,
            },
        );
    }

    /// Remove and return the next packet to arrive anywhere, if any.
    pub fn pop(&mut self) -> Option<(VirtualTime, Packet<P>)> {
        self.queue.pop()
    }

    /// Remove the next packet together with its admission sequence number.
    pub fn pop_seq(&mut self) -> Option<(VirtualTime, u64, Packet<P>)> {
        self.queue.pop_seq()
    }

    /// Arrival time of the next pending packet.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.queue.peek_time()
    }

    /// `(arrival, seq)` of the next pending packet.
    pub fn peek(&self) -> Option<(VirtualTime, u64)> {
        self.queue.peek()
    }

    /// Number of packets in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Network statistics (packet/byte counters).
    pub fn stats(&self) -> &StatSet {
        self.link.stats()
    }

    /// The underlying resource state (fault records, admission counters).
    pub fn link(&self) -> &LinkState {
        &self.link
    }

    /// Disassemble into the resource state and the pending packets
    /// (drained in arrival order, with their admission sequence numbers).
    pub fn into_parts(mut self) -> (LinkState, Vec<(VirtualTime, u64, Packet<P>)>) {
        let mut pending = Vec::with_capacity(self.queue.len());
        while let Some(e) = self.queue.pop_seq() {
            pending.push(e);
        }
        (self.link, pending)
    }

    /// Reassemble a network from a resource state plus pending packets
    /// (the inverse of [`SimNetwork::into_parts`]).
    pub fn from_parts(link: LinkState, pending: Vec<(VirtualTime, u64, Packet<P>)>) -> Self {
        let mut queue = EventQueue::with_capacity(pending.len().max(1024));
        for (t, s, p) in pending {
            queue.push_at(t, s, p);
        }
        SimNetwork { queue, link }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(v: u32) -> AmEnvelope<u32> {
        AmEnvelope::Small(v)
    }

    #[test]
    fn delivery_pays_latency_and_bandwidth() {
        let model = LinkModel {
            latency: VirtualDuration::from_nanos(1_000),
            per_byte: VirtualDuration::from_nanos(10),
            inject_overhead: VirtualDuration::from_nanos(100),
            backpressure_window: VirtualDuration::from_millis(1_000),
        };
        let mut net = SimNetwork::new(2, model);
        net.inject(VirtualTime::ZERO, 0, 1, small(7), 20);
        let (t, p) = net.pop().unwrap();
        // inject 100 + 20*10 bytes = 300 NI time, + 1000 latency
        assert_eq!(t.as_nanos(), 100 + 200 + 1_000);
        assert_eq!(p.dst, 1);
        assert_eq!(p.body, small(7));
    }

    #[test]
    fn per_link_fifo_holds_even_with_size_inversion() {
        // A huge packet followed by a tiny one on the same link: the tiny
        // one must not overtake.
        let model = LinkModel {
            latency: VirtualDuration::from_nanos(1_000),
            per_byte: VirtualDuration::from_nanos(100),
            inject_overhead: VirtualDuration::ZERO,
            backpressure_window: VirtualDuration::from_millis(1_000),
        };
        let mut net = SimNetwork::new(2, model);
        net.inject(VirtualTime::ZERO, 0, 1, small(1), 10_000);
        net.inject(VirtualTime::ZERO, 0, 1, small(2), 1);
        let (t1, p1) = net.pop().unwrap();
        let (t2, p2) = net.pop().unwrap();
        assert_eq!(p1.body, small(1));
        assert_eq!(p2.body, small(2));
        assert!(t1 <= t2, "FIFO violated: {t1:?} > {t2:?}");
    }

    #[test]
    fn injection_serializes_at_the_source() {
        let model = LinkModel {
            latency: VirtualDuration::ZERO,
            per_byte: VirtualDuration::from_nanos(10),
            inject_overhead: VirtualDuration::ZERO,
            backpressure_window: VirtualDuration::from_millis(1_000),
        };
        let mut net = SimNetwork::new(3, model);
        // Two sends to *different* destinations still queue at the NI.
        let free1 = net.inject(VirtualTime::ZERO, 0, 1, small(1), 100);
        let free2 = net.inject(VirtualTime::ZERO, 0, 2, small(2), 100);
        assert_eq!(free1.as_nanos(), 1_000);
        assert_eq!(free2.as_nanos(), 2_000);
    }

    #[test]
    fn different_sources_do_not_interfere() {
        let mut net = SimNetwork::new(3, LinkModel::cm5());
        let f0 = net.inject(VirtualTime::ZERO, 0, 2, small(1), 8);
        let f1 = net.inject(VirtualTime::ZERO, 1, 2, small(2), 8);
        assert_eq!(f0, f1, "independent NIs should be symmetric");
    }

    #[test]
    fn stats_count_packets_and_bytes() {
        let mut net = SimNetwork::new(2, LinkModel::instant());
        net.inject(VirtualTime::ZERO, 0, 1, small(1), 30);
        net.inject(VirtualTime::ZERO, 1, 0, small(2), 12);
        assert_eq!(net.stats().get("net.packets"), 2);
        assert_eq!(net.stats().get("net.bytes"), 42);
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_checks_node_ids() {
        let mut net = SimNetwork::new(2, LinkModel::instant());
        net.inject(VirtualTime::ZERO, 0, 5, small(1), 1);
    }

    #[test]
    fn drop_fault_loses_packets_but_charges_the_sender() {
        let mut net = SimNetwork::new(2, LinkModel::cm5());
        net.set_fault_plan(&crate::fault::FaultPlan::none().with_drop(1.0), 1);
        let free = net.inject(VirtualTime::ZERO, 0, 1, small(1), 8);
        assert!(free > VirtualTime::ZERO, "NI time still spent");
        assert_eq!(net.in_flight(), 0, "the packet was lost");
        assert_eq!(net.stats().get("net.fault_dropped"), 1);
    }

    #[test]
    fn duplicate_fault_copies_only_reliable_packets() {
        let plan = crate::fault::FaultPlan::none().with_duplicate(1.0);
        let mut net = SimNetwork::new(2, LinkModel::cm5());
        net.set_fault_plan(&plan, 1);
        // An opaque Small payload cannot be copied — the lost duplicate
        // is counted and recorded, not silently dropped…
        net.inject(VirtualTime::ZERO, 0, 1, small(1), 8);
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.stats().get("net.fault_dup_unclonable"), 1);
        assert_eq!(net.link.dup_clone_failures().len(), 1);
        assert_eq!(net.link.dup_clone_failures()[0].src, 0);
        assert_eq!(net.link.dup_clone_failures()[0].dst, 1);
        // …but a Rel packet can.
        let rel = AmEnvelope::Rel {
            seq: 1,
            body: crate::packet::RelPayload::new(small(2)),
            bytes: 8,
        };
        net.inject(VirtualTime::ZERO, 0, 1, rel, 16);
        assert_eq!(net.in_flight(), 3, "original + duplicate");
        assert_eq!(net.stats().get("net.fault_duplicated"), 2);
    }

    #[test]
    fn reorder_fault_lets_later_packets_overtake() {
        let model = LinkModel {
            latency: VirtualDuration::from_nanos(1_000),
            per_byte: VirtualDuration::from_nanos(100),
            inject_overhead: VirtualDuration::ZERO,
            backpressure_window: VirtualDuration::from_millis(1_000),
        };
        let mut plan = crate::fault::FaultPlan::none().with_reorder(1.0);
        plan.reorder_window = VirtualDuration::from_nanos(1_000_000);
        let mut net = SimNetwork::new(2, model);
        net.set_fault_plan(&plan, 3);
        // Without faults the FIFO clamp forces arrival order 1 then 2
        // (see per_link_fifo_holds_even_with_size_inversion); with
        // every packet reordered by a random extra delay, overtaking
        // becomes possible — assert both are still delivered.
        net.inject(VirtualTime::ZERO, 0, 1, small(1), 10_000);
        net.inject(VirtualTime::ZERO, 0, 1, small(2), 1);
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.stats().get("net.fault_reordered"), 2);
    }

    #[test]
    fn fault_decisions_replay_identically() {
        let plan = crate::fault::FaultPlan::chaos(0.4);
        let run = || {
            let mut net = SimNetwork::new(4, LinkModel::cm5());
            net.set_fault_plan(&plan, 99);
            for i in 0..50u64 {
                let rel = AmEnvelope::Rel {
                    seq: i,
                    body: crate::packet::RelPayload::new(small(i as u32)),
                    bytes: 8,
                };
                net.inject(
                    VirtualTime::from_nanos(i * 700),
                    (i % 4) as NodeId,
                    ((i + 1) % 4) as NodeId,
                    rel,
                    24,
                );
            }
            let mut order = Vec::new();
            while let Some((t, seq, p)) = net.pop_seq() {
                order.push((t, seq, p.src, p.dst));
            }
            order
        };
        assert_eq!(run(), run(), "same seed, same admissions, same fates");
    }

    #[test]
    fn scheduled_timers_bypass_admission() {
        let mut net = SimNetwork::new(2, LinkModel::cm5());
        net.schedule(VirtualTime::from_nanos(500), 1, AmEnvelope::Timer(7u32));
        assert_eq!(net.stats().get("net.packets"), 0, "no admission stats");
        let (t, p) = net.pop().unwrap();
        assert_eq!(t.as_nanos(), 500);
        assert_eq!(p.src, 1);
        assert_eq!(p.dst, 1);
        assert_eq!(p.body, AmEnvelope::Timer(7));
    }
}
