//! Reliable, in-order, exactly-once delivery over faulty links.
//!
//! When a [`FaultPlan`](crate::fault::FaultPlan) enables link
//! faults, the kernel wraps every outbound envelope in
//! [`Rel`](crate::packet::AmEnvelope::Rel) envelopes and runs the
//! classic positive-ack protocol implemented here:
//!
//! * **Sender** ([`RelSender`]): per-peer sequence numbers starting at
//!   1, an unacked buffer, and a single retransmit timer per peer with
//!   exponential backoff. Acks are cumulative, so one ack can retire a
//!   whole prefix.
//! * **Receiver** ([`RelReceiver`]): per-peer cumulative counter plus a
//!   holdback buffer. Out-of-order arrivals are buffered and released
//!   in sequence order, preserving the per-link FIFO property the
//!   kernel's migration protocol relies on; duplicates (retransmits
//!   that raced an ack, or fabric-duplicated packets) are dropped.
//!
//! Both sides are pure state machines: they never touch the network or
//! the clock. The kernel drives them and turns their decisions into
//! injections and timer events, which keeps every decision on the
//! canonical execution path the windowed-parallel executor replays —
//! the determinism requirement of the chaos subsystem.

use crate::packet::{AmEnvelope, NodeId, RelPayload};
use std::collections::{BTreeMap, HashMap};

/// Max packets re-sent per retransmit-timer firing. Bounding the batch
/// keeps a long unacked queue from flooding the link in one instant;
/// the still-armed timer picks up the rest.
pub const RETX_BATCH: usize = 16;

/// One peer's transmit state.
struct PeerTx<P> {
    /// Next sequence number to assign (first packet is seq 1).
    next_seq: u64,
    /// Sent but not yet cumulatively acked: seq → (payload, wire bytes
    /// of the inner envelope).
    unacked: BTreeMap<u64, (RelPayload<P>, usize)>,
    /// Whether a retransmit timer is in flight for this peer. Invariant:
    /// `armed` ⇔ at least one timer event for this peer exists in the
    /// simulator, so stale timers must be reported via
    /// [`RelSender::expire`] to keep it true.
    armed: bool,
    /// Consecutive retransmit rounds without ack progress; indexes the
    /// exponential backoff.
    backoff: u32,
}

impl<P> Default for PeerTx<P> {
    fn default() -> Self {
        PeerTx {
            next_seq: 1,
            unacked: BTreeMap::new(),
            armed: false,
            backoff: 0,
        }
    }
}

/// A freshly registered reliable send: what the kernel must inject.
pub struct SendTicket<P> {
    /// Sequence number assigned to this packet.
    pub seq: u64,
    /// Shared claim ticket for the wrapped envelope — the copy to put
    /// on the wire (the sender keeps a clone for retransmission).
    pub payload: RelPayload<P>,
    /// True when the kernel must schedule a retransmit timer for this
    /// peer (no timer was in flight before this send).
    pub arm_timer: bool,
}

/// What to do when a retransmit timer fires.
pub enum RetxDecision<P> {
    /// Everything was acked before the timer fired — the timer is
    /// stale, nothing to re-send, and the sender has disarmed itself
    /// (the kernel must not reschedule).
    Stale,
    /// Re-send these copies and reschedule the timer after the backoff
    /// delay indexed by `attempt`.
    Retransmit {
        /// Up to [`RETX_BATCH`] lowest unacked packets: (seq, payload,
        /// inner wire bytes).
        copies: Vec<(u64, RelPayload<P>, usize)>,
        /// Backoff index for the *next* interval (0 on the first
        /// retransmit round, then 1, 2, … until ack progress resets it).
        attempt: u32,
    },
}

/// Sender half of the reliable-delivery protocol (one per kernel,
/// tracking every peer it has sent to).
pub struct RelSender<P> {
    peers: HashMap<NodeId, PeerTx<P>>,
}

impl<P> Default for RelSender<P> {
    fn default() -> Self {
        RelSender {
            peers: HashMap::new(),
        }
    }
}

impl<P> RelSender<P> {
    /// New sender with no peer state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an outbound envelope for reliable delivery to `dst`.
    /// `bytes` is the wire size of the inner envelope (header
    /// included). Returns the ticket describing what to inject.
    pub fn register(&mut self, dst: NodeId, env: AmEnvelope<P>, bytes: usize) -> SendTicket<P> {
        let peer = self.peers.entry(dst).or_default();
        let seq = peer.next_seq;
        peer.next_seq += 1;
        let payload = RelPayload::new(env);
        peer.unacked.insert(seq, (payload.clone(), bytes));
        let arm_timer = !peer.armed;
        peer.armed = true;
        SendTicket {
            seq,
            payload,
            arm_timer,
        }
    }

    /// Process a cumulative ack from `peer`: retire every packet with
    /// seq ≤ `cum`. Returns true when the ack made progress (at least
    /// one packet retired), which also resets the backoff.
    pub fn on_ack(&mut self, peer: NodeId, cum: u64) -> bool {
        let Some(tx) = self.peers.get_mut(&peer) else {
            return false;
        };
        let before = tx.unacked.len();
        tx.unacked = tx.unacked.split_off(&(cum + 1));
        let progressed = tx.unacked.len() < before;
        if progressed {
            tx.backoff = 0;
        }
        progressed
    }

    /// A retransmit timer for `peer` fired: decide whether to re-send.
    /// On [`RetxDecision::Stale`] the peer is disarmed internally; on
    /// [`RetxDecision::Retransmit`] it stays armed and the kernel must
    /// reschedule the timer.
    pub fn timer_fired(&mut self, peer: NodeId) -> RetxDecision<P> {
        let Some(tx) = self.peers.get_mut(&peer) else {
            return RetxDecision::Stale;
        };
        if tx.unacked.is_empty() {
            tx.armed = false;
            tx.backoff = 0;
            return RetxDecision::Stale;
        }
        let copies: Vec<(u64, RelPayload<P>, usize)> = tx
            .unacked
            .iter()
            .take(RETX_BATCH)
            .map(|(&seq, (p, b))| (seq, p.clone(), *b))
            .collect();
        let attempt = tx.backoff;
        tx.backoff += 1;
        RetxDecision::Retransmit { copies, attempt }
    }

    /// True when `peer` has unacked packets outstanding.
    pub fn has_unacked(&self, peer: NodeId) -> bool {
        self.peers
            .get(&peer)
            .map(|tx| !tx.unacked.is_empty())
            .unwrap_or(false)
    }

    /// The kernel consumed a timer for `peer` without calling
    /// [`RelSender::timer_fired`] (it was short-circuited as stale at
    /// the machine layer): disarm so the next send re-arms.
    pub fn expire(&mut self, peer: NodeId) {
        if let Some(tx) = self.peers.get_mut(&peer) {
            tx.armed = false;
            tx.backoff = 0;
        }
    }
}

/// One peer's receive state.
struct PeerRx<P> {
    /// Highest sequence delivered in order; everything ≤ `cum` is done.
    cum: u64,
    /// Out-of-order arrivals held back until the gap below them fills:
    /// seq → (payload, inner wire bytes).
    buffered: BTreeMap<u64, (RelPayload<P>, usize)>,
}

impl<P> Default for PeerRx<P> {
    fn default() -> Self {
        PeerRx {
            cum: 0,
            buffered: BTreeMap::new(),
        }
    }
}

/// What happened to an inbound reliable packet.
pub enum RxOutcome<P> {
    /// Already delivered (or already buffered) — drop it. The kernel
    /// still acks, since the ack that would have retired it may itself
    /// have been lost.
    Duplicate,
    /// Accepted. The vec holds every envelope now deliverable in
    /// sequence order (empty when the packet was buffered out of
    /// order).
    Deliver(Vec<AmEnvelope<P>>),
}

/// Receiver half of the reliable-delivery protocol.
pub struct RelReceiver<P> {
    peers: HashMap<NodeId, PeerRx<P>>,
}

impl<P> Default for RelReceiver<P> {
    fn default() -> Self {
        RelReceiver {
            peers: HashMap::new(),
        }
    }
}

impl<P> RelReceiver<P> {
    /// New receiver with no peer state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process a reliable data packet from `src`. Dedups, holds back
    /// out-of-order arrivals, and releases in-order runs.
    pub fn on_data(
        &mut self,
        src: NodeId,
        seq: u64,
        payload: RelPayload<P>,
        bytes: usize,
    ) -> RxOutcome<P> {
        let rx = self.peers.entry(src).or_default();
        if seq <= rx.cum || rx.buffered.contains_key(&seq) {
            return RxOutcome::Duplicate;
        }
        rx.buffered.insert(seq, (payload, bytes));
        let mut out = Vec::new();
        while let Some(entry) = rx.buffered.remove(&(rx.cum + 1)) {
            rx.cum += 1;
            if let Some(env) = entry.0.take() {
                out.push(env);
            }
        }
        RxOutcome::Deliver(out)
    }

    /// Current cumulative ack value for `src` (what to send back).
    pub fn cum(&self, src: NodeId) -> u64 {
        self.peers.get(&src).map(|rx| rx.cum).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AmEnvelope;

    fn env(n: u32) -> AmEnvelope<u32> {
        AmEnvelope::Small(n)
    }

    #[test]
    fn sender_assigns_sequences_and_arms_once() {
        let mut tx = RelSender::new();
        let t1 = tx.register(1, env(10), 8);
        let t2 = tx.register(1, env(11), 8);
        let t3 = tx.register(2, env(12), 8);
        assert_eq!((t1.seq, t2.seq, t3.seq), (1, 2, 1));
        assert!(t1.arm_timer, "first send arms the peer timer");
        assert!(!t2.arm_timer, "timer already in flight");
        assert!(t3.arm_timer, "per-peer timers");
    }

    #[test]
    fn cumulative_ack_retires_prefix_and_resets_backoff() {
        let mut tx = RelSender::new();
        for i in 0..4 {
            tx.register(1, env(i), 8);
        }
        // Force a couple of backoff rounds.
        assert!(matches!(
            tx.timer_fired(1),
            RetxDecision::Retransmit { attempt: 0, .. }
        ));
        assert!(matches!(
            tx.timer_fired(1),
            RetxDecision::Retransmit { attempt: 1, .. }
        ));
        assert!(tx.on_ack(1, 3), "acking 1..=3 makes progress");
        assert!(tx.has_unacked(1), "seq 4 still outstanding");
        assert!(!tx.on_ack(1, 2), "stale ack is a no-op");
        assert!(matches!(
            tx.timer_fired(1),
            RetxDecision::Retransmit { attempt: 0, .. }
        ));
        assert!(tx.on_ack(1, 4));
        assert!(!tx.has_unacked(1));
    }

    #[test]
    fn stale_timer_disarms_so_next_send_rearms() {
        let mut tx = RelSender::new();
        tx.register(1, env(1), 8);
        tx.on_ack(1, 1);
        assert!(matches!(tx.timer_fired(1), RetxDecision::Stale));
        let t = tx.register(1, env(2), 8);
        assert!(t.arm_timer, "disarmed peer re-arms on next send");
    }

    #[test]
    fn retransmit_batch_is_bounded() {
        let mut tx = RelSender::new();
        for i in 0..(RETX_BATCH as u32 + 9) {
            tx.register(1, env(i), 8);
        }
        match tx.timer_fired(1) {
            RetxDecision::Retransmit { copies, .. } => {
                assert_eq!(copies.len(), RETX_BATCH);
                assert_eq!(copies[0].0, 1, "lowest unacked first");
            }
            RetxDecision::Stale => panic!("expected a retransmit"),
        }
    }

    #[test]
    fn receiver_dedups_and_releases_in_order() {
        let mut rx = RelReceiver::new();
        // seq 2 arrives first: held back.
        match rx.on_data(0, 2, RelPayload::new(env(2)), 8) {
            RxOutcome::Deliver(v) => assert!(v.is_empty()),
            RxOutcome::Duplicate => panic!("not a duplicate"),
        }
        assert_eq!(rx.cum(0), 0);
        // A copy of seq 2: duplicate.
        assert!(matches!(
            rx.on_data(0, 2, RelPayload::new(env(2)), 8),
            RxOutcome::Duplicate
        ));
        // seq 1 fills the gap: both release, in order.
        match rx.on_data(0, 1, RelPayload::new(env(1)), 8) {
            RxOutcome::Deliver(v) => assert_eq!(v, vec![env(1), env(2)]),
            RxOutcome::Duplicate => panic!("not a duplicate"),
        }
        assert_eq!(rx.cum(0), 2);
        // A late retransmit of seq 1: duplicate.
        assert!(matches!(
            rx.on_data(0, 1, RelPayload::new(env(1)), 8),
            RxOutcome::Duplicate
        ));
    }

    #[test]
    fn end_to_end_over_a_lossy_link() {
        // Simulate: sender pushes 5 packets, the fabric loses #2 and
        // #4, a retransmit round recovers them, acks retire everything.
        let mut tx = RelSender::new();
        let mut rx = RelReceiver::new();
        let mut delivered = Vec::new();
        for i in 1..=5u32 {
            let t = tx.register(7, env(i), 8);
            if i == 2 || i == 4 {
                continue; // lost in the fabric
            }
            if let RxOutcome::Deliver(v) = rx.on_data(7, t.seq, t.payload, 8) {
                delivered.extend(v);
            }
        }
        assert_eq!(delivered, vec![env(1)], "2 blocks 3..=5 in holdback");
        tx.on_ack(7, rx.cum(7));
        match tx.timer_fired(7) {
            RetxDecision::Retransmit { copies, .. } => {
                assert_eq!(copies.iter().map(|c| c.0).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
                for (seq, p, b) in copies {
                    if let RxOutcome::Deliver(v) = rx.on_data(7, seq, p, b) {
                        delivered.extend(v);
                    }
                }
            }
            RetxDecision::Stale => panic!("unacked packets outstanding"),
        }
        assert_eq!(delivered, (1..=5).map(env).collect::<Vec<_>>());
        assert!(tx.on_ack(7, rx.cum(7)));
        assert!(!tx.has_unacked(7));
        assert!(matches!(tx.timer_fired(7), RetxDecision::Stale));
    }
}
