//! Hypercube-like minimum spanning tree for broadcast (paper §3, §6.4).
//!
//! "The communication module implements the broadcast primitive in terms
//! of point-to-point communication, using a hypercube-like minimum
//! spanning tree communication structure."
//!
//! The tree is a **binomial tree** over node ranks relabeled so any node
//! can be the root: with `p` participants and root `r`, node `id`'s
//! *relative rank* is `(id - r) mod p`. A node of relative rank `j`
//! forwards to relative ranks `j + 2^k` for each `2^k` below `j`'s lowest
//! set bit (all of `2^0..` when `j == 0`). The resulting tree spans all
//! `p` ranks with depth `ceil(log2 p)` and each node sending at most
//! `log2 p` messages — the classic hypercube broadcast schedule.
//!
//! The functions here are pure schedule computations; the kernel turns
//! them into actual sends. Keeping them pure makes the spanning property
//! directly property-testable.

use crate::packet::NodeId;

/// Relative rank of `id` in a broadcast rooted at `root` over `p` nodes.
#[inline]
pub fn relative_rank(id: NodeId, root: NodeId, p: usize) -> usize {
    debug_assert!(p > 0);
    (id as usize + p - root as usize % p) % p
}

/// Absolute node id of the participant with relative rank `rank`.
#[inline]
pub fn absolute_id(rank: usize, root: NodeId, p: usize) -> NodeId {
    ((rank + root as usize) % p) as NodeId
}

/// Children (as **relative ranks**) of relative rank `j` in the binomial
/// broadcast tree over `p` participants.
///
/// Rank 0 (the root) has children `1, 2, 4, 8, …`; a non-root rank `j`
/// covers the sub-range below its lowest set bit.
pub fn children_ranks(j: usize, p: usize) -> Vec<usize> {
    debug_assert!(j < p, "rank out of range");
    let limit = if j == 0 {
        // Root: fan out over every power of two below p.
        p.next_power_of_two()
    } else {
        // Non-root: only powers below the lowest set bit of j.
        j & j.wrapping_neg()
    };
    let mut kids = Vec::new();
    let mut step = 1usize;
    while step < limit {
        let child = j + step;
        if child < p {
            kids.push(child);
        }
        step <<= 1;
    }
    kids
}

/// Children (as **absolute node ids**) of node `id` in a broadcast rooted
/// at `root` over the first `p` nodes of the partition.
pub fn children(id: NodeId, root: NodeId, p: usize) -> Vec<NodeId> {
    children_ranks(relative_rank(id, root, p), p)
        .into_iter()
        .map(|r| absolute_id(r, root, p))
        .collect()
}

/// Depth of the broadcast tree: the number of hops from the root to the
/// farthest leaf.
///
/// A rank `j` sits `popcount(j)` hops from the root (each hop clears one
/// set bit), so the depth is the maximum popcount over ranks `0..p` —
/// which is at most `ceil(log2 p)`.
pub fn depth(p: usize) -> usize {
    debug_assert!(p > 0);
    if p == 1 {
        return 0;
    }
    let bits = (usize::BITS - (p - 1).leading_zeros()) as usize;
    // Candidates for the max popcount below p: p-1 itself, or the
    // all-ones value one bit shorter (2^(bits-1) - 1 < p).
    ((p - 1).count_ones() as usize).max(bits - 1)
}

/// Number of point-to-point sends in the whole tree: `p - 1` (minimum
/// possible for a broadcast, hence "minimum spanning tree").
pub fn total_sends(p: usize) -> usize {
    p.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Simulate the schedule and return (reached set, max hop depth).
    fn run_tree(root: NodeId, p: usize) -> (Vec<bool>, usize) {
        let mut reached = vec![false; p];
        let mut max_depth = 0;
        let mut frontier = VecDeque::new();
        frontier.push_back((root, 0usize));
        reached[root as usize] = true;
        while let Some((node, d)) = frontier.pop_front() {
            max_depth = max_depth.max(d);
            for c in children(node, root, p) {
                assert!(
                    !reached[c as usize],
                    "node {c} reached twice (p={p}, root={root})"
                );
                reached[c as usize] = true;
                frontier.push_back((c, d + 1));
            }
        }
        (reached, max_depth)
    }

    #[test]
    fn spans_all_nodes_exactly_once_all_sizes() {
        for p in 1..=64 {
            let (reached, _) = run_tree(0, p);
            assert!(reached.iter().all(|&r| r), "p={p} not fully spanned");
        }
    }

    #[test]
    fn spans_from_any_root() {
        for p in [1usize, 2, 3, 5, 8, 13, 16, 31, 32] {
            for root in 0..p {
                let (reached, _) = run_tree(root as NodeId, p);
                assert!(reached.iter().all(|&r| r), "p={p} root={root}");
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        for p in [1usize, 2, 3, 4, 7, 8, 9, 16, 33, 64, 100, 128] {
            let (_, d) = run_tree(0, p);
            assert_eq!(d, depth(p), "measured depth mismatch at p={p}");
            if p > 1 {
                assert!(d <= (p as f64).log2().ceil() as usize);
            }
        }
    }

    #[test]
    fn root_children_are_powers_of_two() {
        assert_eq!(children_ranks(0, 16), vec![1, 2, 4, 8]);
        assert_eq!(children_ranks(0, 10), vec![1, 2, 4, 8]);
        assert_eq!(children_ranks(0, 1), Vec::<usize>::new());
    }

    #[test]
    fn nonroot_children_respect_low_bit() {
        // rank 4 (0b100) covers ranks 5 (0b101) and 6 (0b110).
        assert_eq!(children_ranks(4, 8), vec![5, 6]);
        // rank 6 (0b110) covers rank 7 only.
        assert_eq!(children_ranks(6, 8), vec![7]);
        // odd ranks are leaves.
        for j in (1..32).step_by(2) {
            assert!(children_ranks(j, 32).is_empty(), "rank {j} should be a leaf");
        }
    }

    #[test]
    fn fanout_bounded_by_log() {
        for p in [2usize, 16, 64, 128] {
            let log = (p as f64).log2().ceil() as usize;
            for j in 0..p {
                let fan = children_ranks(j, p).len();
                assert!(fan <= log, "fanout {fan} at rank {j}, p={p}");
            }
        }
    }

    #[test]
    fn total_sends_is_p_minus_one() {
        for p in [1usize, 2, 3, 9, 16, 100] {
            let sends: usize = (0..p).map(|j| children_ranks(j, p).len()).sum();
            assert_eq!(sends, total_sends(p));
        }
    }

    #[test]
    fn relabeling_roundtrip() {
        let p = 12;
        for root in 0..p as NodeId {
            for id in 0..p as NodeId {
                let r = relative_rank(id, root, p);
                assert_eq!(absolute_id(r, root, p), id);
            }
        }
    }
}
