//! Wire-level packet types for the active-message layer.
//!
//! CMAM (the CM-5 active-message layer the paper builds on) distinguishes
//! *small* active messages — a handler plus a few words, injected directly
//! into the network with no receiver-side buffering — from *bulk* data
//! transfers, which require a three-phase protocol precisely because
//! active messages are unbuffered (paper §6.5). We keep that distinction:
//! the AM layer is generic over the kernel's payload type `P`, but wraps
//! it in an [`AmEnvelope`] that makes the small/bulk split and the
//! three-phase protocol explicit.

use core::fmt;

/// Identifier of a node (processing element) in the partition.
///
/// The CM-5 scales to 16 K processors; `u16` covers that exactly.
pub type NodeId = u16;

/// Maximum payload size (bytes) that may travel as a *small* active
/// message. Larger payloads must use the three-phase bulk protocol.
///
/// CMAM small messages carry a handler word plus four argument words; we
/// allow a somewhat larger eager limit (one cache line of arguments) since
/// our envelope also carries kernel headers, but the principle — bulk data
/// cannot be eagerly injected — is preserved and enforced.
pub const MAX_SMALL_BYTES: usize = 64;

/// A transfer tag correlating the three phases of one bulk transfer.
pub type BulkTag = u64;

/// The envelope every network packet travels in.
///
/// `P` is the kernel-level payload (actor messages, creation requests,
/// FIR messages, …). The AM layer does not interpret `P`; it only needs
/// its wire size to run the cost model and to police the small/bulk split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmEnvelope<P> {
    /// A small active message: delivered directly to the destination
    /// node's handler loop.
    Small(P),
    /// Phase 1 of a bulk transfer: the sender announces `bytes` of data
    /// identified by `tag` and waits for an ack (paper §6.5).
    BulkRequest {
        /// Correlation tag chosen by the sender.
        tag: BulkTag,
        /// Size of the data to follow.
        bytes: usize,
    },
    /// Phase 2: the receiver's node manager grants the transfer. Flow
    /// control lives here — only one grant is outstanding per receiver.
    BulkAck {
        /// Correlation tag from the matching request.
        tag: BulkTag,
    },
    /// Phase 3: the actual data.
    BulkData {
        /// Correlation tag from the matching request.
        tag: BulkTag,
        /// The kernel payload being transferred.
        body: P,
        /// Wire size of `body` (recorded at request time so the cost
        /// model charges the same size in both phases).
        bytes: usize,
    },
}

impl<P> AmEnvelope<P> {
    /// Approximate wire size of this envelope, given the payload's size.
    ///
    /// Control packets (request/ack) are a fixed small size; data packets
    /// are header + body.
    pub fn wire_bytes(&self, payload_bytes: impl Fn(&P) -> usize) -> usize {
        const HEADER: usize = 16; // dst/handler/len words, as on CMAM
        match self {
            AmEnvelope::Small(p) => HEADER + payload_bytes(p),
            AmEnvelope::BulkRequest { .. } | AmEnvelope::BulkAck { .. } => HEADER,
            AmEnvelope::BulkData { bytes, .. } => HEADER + bytes,
        }
    }
}

/// A packet in flight: source, destination, and envelope.
#[derive(Clone)]
pub struct Packet<P> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The envelope.
    pub body: AmEnvelope<P>,
}

impl<P: fmt::Debug> fmt::Debug for Packet<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet[{} -> {}: {:?}]", self.src, self.dst, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_accounts_for_header() {
        let small: AmEnvelope<Vec<u8>> = AmEnvelope::Small(vec![0u8; 10]);
        assert_eq!(small.wire_bytes(|p| p.len()), 26);
        let req: AmEnvelope<Vec<u8>> = AmEnvelope::BulkRequest { tag: 1, bytes: 4096 };
        assert_eq!(req.wire_bytes(|p| p.len()), 16);
        let ack: AmEnvelope<Vec<u8>> = AmEnvelope::BulkAck { tag: 1 };
        assert_eq!(ack.wire_bytes(|p| p.len()), 16);
        let data: AmEnvelope<Vec<u8>> = AmEnvelope::BulkData {
            tag: 1,
            body: vec![0u8; 4096],
            bytes: 4096,
        };
        assert_eq!(data.wire_bytes(|p| p.len()), 16 + 4096);
    }

    #[test]
    fn packet_debug_is_readable() {
        let p = Packet {
            src: 1,
            dst: 2,
            body: AmEnvelope::Small(7u32),
        };
        assert_eq!(format!("{p:?}"), "Packet[1 -> 2: Small(7)]");
    }
}
