//! Wire-level packet types for the active-message layer.
//!
//! CMAM (the CM-5 active-message layer the paper builds on) distinguishes
//! *small* active messages — a handler plus a few words, injected directly
//! into the network with no receiver-side buffering — from *bulk* data
//! transfers, which require a three-phase protocol precisely because
//! active messages are unbuffered (paper §6.5). We keep that distinction:
//! the AM layer is generic over the kernel's payload type `P`, but wraps
//! it in an [`AmEnvelope`] that makes the small/bulk split and the
//! three-phase protocol explicit.

use core::fmt;
use std::sync::{Arc, Mutex};

/// Identifier of a node (processing element) in the partition.
///
/// The CM-5 scales to 16 K processors; `u16` covers that exactly.
pub type NodeId = u16;

/// Maximum payload size (bytes) that may travel as a *small* active
/// message. Larger payloads must use the three-phase bulk protocol.
///
/// CMAM small messages carry a handler word plus four argument words; we
/// allow a somewhat larger eager limit (one cache line of arguments) since
/// our envelope also carries kernel headers, but the principle — bulk data
/// cannot be eagerly injected — is preserved and enforced.
pub const MAX_SMALL_BYTES: usize = 64;

/// A transfer tag correlating the three phases of one bulk transfer.
pub type BulkTag = u64;

/// Extra wire bytes a reliable-delivery header costs (sequence number).
pub const REL_HEADER: usize = 8;

/// The payload of a reliable-delivery packet: a *claim ticket* shared
/// between the sender's retransmit buffer and every in-flight copy.
///
/// Kernel payloads are not `Clone` (a migrating actor's behavior moves
/// by value), so retransmission cannot copy the envelope. Instead all
/// copies of one sequence number share ownership of the single inner
/// envelope; the receiver's accept path [`RelPayload::take`]s it
/// exactly once — per-link sequence-number dedup guarantees at most one
/// accept, and every other copy is suppressed *before* claiming.
pub struct RelPayload<P>(Arc<Mutex<Option<AmEnvelope<P>>>>);

impl<P> RelPayload<P> {
    /// Wrap one envelope in a fresh claim ticket.
    pub fn new(env: AmEnvelope<P>) -> Self {
        RelPayload(Arc::new(Mutex::new(Some(env))))
    }

    /// Claim the inner envelope. Returns `None` if another copy of this
    /// sequence number was already accepted (the dedup layer should
    /// have suppressed this copy first, so a well-formed receiver never
    /// sees `None`).
    pub fn take(&self) -> Option<AmEnvelope<P>> {
        self.0.lock().expect("reliable payload lock poisoned").take()
    }

    /// True when both tickets refer to the same inner envelope.
    pub fn same_as(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<P> Clone for RelPayload<P> {
    fn clone(&self) -> Self {
        RelPayload(Arc::clone(&self.0))
    }
}

impl<P> fmt::Debug for RelPayload<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never block a debug print on the payload lock.
        match self.0.try_lock() {
            Ok(inner) if inner.is_some() => write!(f, "RelPayload(pending)"),
            Ok(_) => write!(f, "RelPayload(claimed)"),
            Err(_) => write!(f, "RelPayload(locked)"),
        }
    }
}

impl<P> PartialEq for RelPayload<P> {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl<P> Eq for RelPayload<P> {}

/// The envelope every network packet travels in.
///
/// `P` is the kernel-level payload (actor messages, creation requests,
/// FIR messages, …). The AM layer does not interpret `P`; it only needs
/// its wire size to run the cost model and to police the small/bulk split.
#[derive(Debug, Clone)]
pub enum AmEnvelope<P> {
    /// A small active message: delivered directly to the destination
    /// node's handler loop.
    Small(P),
    /// Phase 1 of a bulk transfer: the sender announces `bytes` of data
    /// identified by `tag` and waits for an ack (paper §6.5).
    BulkRequest {
        /// Correlation tag chosen by the sender.
        tag: BulkTag,
        /// Size of the data to follow.
        bytes: usize,
    },
    /// Phase 2: the receiver's node manager grants the transfer. Flow
    /// control lives here — only one grant is outstanding per receiver.
    BulkAck {
        /// Correlation tag from the matching request.
        tag: BulkTag,
    },
    /// Phase 3: the actual data.
    BulkData {
        /// Correlation tag from the matching request.
        tag: BulkTag,
        /// The kernel payload being transferred.
        body: P,
        /// Wire size of `body` (recorded at request time so the cost
        /// model charges the same size in both phases).
        bytes: usize,
    },
    /// A reliable-delivery data packet (chaos mode): one inner envelope
    /// under a per-link sequence number. The receiver dedups/reorders
    /// by `seq` and acknowledges cumulatively with [`AmEnvelope::RelAck`].
    Rel {
        /// Per-(src,dst) sequence number, starting at 1.
        seq: u64,
        /// The wrapped envelope (shared claim ticket — see
        /// [`RelPayload`]).
        body: RelPayload<P>,
        /// Wire size of the *inner* envelope (recorded at wrap time so
        /// retransmitted copies charge the same cost).
        bytes: usize,
    },
    /// Cumulative acknowledgment for reliable delivery: every packet
    /// with `seq <= cum` on this link has been accepted. Acks travel
    /// unreliably — they are idempotent and reorder-safe.
    RelAck {
        /// Highest consecutively accepted sequence number.
        cum: u64,
    },
    /// A self-addressed timer event (retransmit timeout, FIR watchdog):
    /// scheduled directly into the event queue, never admitted through
    /// the link model — timers consume no network resources and cannot
    /// themselves be dropped or reordered.
    Timer(P),
}

impl<P> AmEnvelope<P> {
    /// Approximate wire size of this envelope, given the payload's size.
    ///
    /// Control packets (request/ack) are a fixed small size; data packets
    /// are header + body.
    pub fn wire_bytes(&self, payload_bytes: impl Fn(&P) -> usize) -> usize {
        const HEADER: usize = 16; // dst/handler/len words, as on CMAM
        match self {
            AmEnvelope::Small(p) => HEADER + payload_bytes(p),
            AmEnvelope::BulkRequest { .. } | AmEnvelope::BulkAck { .. } => HEADER,
            AmEnvelope::BulkData { bytes, .. } => HEADER + bytes,
            // `bytes` already includes the inner envelope's header.
            AmEnvelope::Rel { bytes, .. } => bytes + REL_HEADER,
            AmEnvelope::RelAck { .. } => HEADER + REL_HEADER,
            AmEnvelope::Timer(_) => 0,
        }
    }

    /// Clone this envelope if it is clonable without `P: Clone` — true
    /// for the reliable-delivery variants (their payload is a shared
    /// claim ticket). The fault layer uses this to materialize
    /// duplicate copies: opaque kernel payloads cannot be duplicated,
    /// which is fine because in reliable chaos mode every faultable
    /// packet travels as `Rel`/`RelAck`.
    pub fn try_clone(&self) -> Option<AmEnvelope<P>> {
        match self {
            AmEnvelope::Rel { seq, body, bytes } => Some(AmEnvelope::Rel {
                seq: *seq,
                body: body.clone(),
                bytes: *bytes,
            }),
            AmEnvelope::RelAck { cum } => Some(AmEnvelope::RelAck { cum: *cum }),
            _ => None,
        }
    }
}

impl<P: PartialEq> PartialEq for AmEnvelope<P> {
    fn eq(&self, other: &Self) -> bool {
        use AmEnvelope::*;
        match (self, other) {
            (Small(a), Small(b)) => a == b,
            (
                BulkRequest { tag: ta, bytes: ba },
                BulkRequest { tag: tb, bytes: bb },
            ) => ta == tb && ba == bb,
            (BulkAck { tag: ta }, BulkAck { tag: tb }) => ta == tb,
            (
                BulkData { tag: ta, body: pa, bytes: ba },
                BulkData { tag: tb, body: pb, bytes: bb },
            ) => ta == tb && ba == bb && pa == pb,
            (
                Rel { seq: sa, body: pa, bytes: ba },
                Rel { seq: sb, body: pb, bytes: bb },
            ) => sa == sb && ba == bb && pa.same_as(pb),
            (RelAck { cum: ca }, RelAck { cum: cb }) => ca == cb,
            (Timer(a), Timer(b)) => a == b,
            _ => false,
        }
    }
}

impl<P: Eq> Eq for AmEnvelope<P> {}

/// A packet in flight: source, destination, and envelope.
#[derive(Clone)]
pub struct Packet<P> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// The envelope.
    pub body: AmEnvelope<P>,
}

impl<P: fmt::Debug> fmt::Debug for Packet<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet[{} -> {}: {:?}]", self.src, self.dst, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_accounts_for_header() {
        let small: AmEnvelope<Vec<u8>> = AmEnvelope::Small(vec![0u8; 10]);
        assert_eq!(small.wire_bytes(|p| p.len()), 26);
        let req: AmEnvelope<Vec<u8>> = AmEnvelope::BulkRequest { tag: 1, bytes: 4096 };
        assert_eq!(req.wire_bytes(|p| p.len()), 16);
        let ack: AmEnvelope<Vec<u8>> = AmEnvelope::BulkAck { tag: 1 };
        assert_eq!(ack.wire_bytes(|p| p.len()), 16);
        let data: AmEnvelope<Vec<u8>> = AmEnvelope::BulkData {
            tag: 1,
            body: vec![0u8; 4096],
            bytes: 4096,
        };
        assert_eq!(data.wire_bytes(|p| p.len()), 16 + 4096);
    }

    #[test]
    fn rel_payload_is_claimed_exactly_once() {
        let p = RelPayload::new(AmEnvelope::Small(9u32));
        let copy = p.clone();
        assert!(p.same_as(&copy));
        assert_eq!(p.take(), Some(AmEnvelope::Small(9)));
        assert_eq!(copy.take(), None, "second claim sees the ticket spent");
    }

    #[test]
    fn only_reliable_envelopes_are_fault_clonable() {
        // `String` is Clone, but try_clone must still refuse opaque
        // payload variants — the contract is about *which variants* the
        // fault layer may copy, not about `P`.
        let small: AmEnvelope<String> = AmEnvelope::Small("x".into());
        assert!(small.try_clone().is_none());
        let rel: AmEnvelope<String> = AmEnvelope::Rel {
            seq: 3,
            body: RelPayload::new(AmEnvelope::Small("x".into())),
            bytes: 17,
        };
        let copy = rel.try_clone().expect("rel packets are duplicable");
        assert_eq!(rel, copy, "copies share the claim ticket");
        let ack: AmEnvelope<String> = AmEnvelope::RelAck { cum: 5 };
        assert_eq!(ack.try_clone(), Some(ack));
    }

    #[test]
    fn rel_wire_size_charges_inner_plus_header() {
        let rel: AmEnvelope<Vec<u8>> = AmEnvelope::Rel {
            seq: 1,
            body: RelPayload::new(AmEnvelope::Small(vec![0u8; 10])),
            bytes: 26,
        };
        assert_eq!(rel.wire_bytes(|p| p.len()), 26 + REL_HEADER);
        let ack: AmEnvelope<Vec<u8>> = AmEnvelope::RelAck { cum: 1 };
        assert_eq!(ack.wire_bytes(|p| p.len()), 16 + REL_HEADER);
        let timer: AmEnvelope<Vec<u8>> = AmEnvelope::Timer(vec![]);
        assert_eq!(timer.wire_bytes(|p| p.len()), 0);
    }

    #[test]
    fn packet_debug_is_readable() {
        let p = Packet {
            src: 1,
            dst: 2,
            body: AmEnvelope::Small(7u32),
        };
        assert_eq!(format!("{p:?}"), "Packet[1 -> 2: Small(7)]");
    }
}
