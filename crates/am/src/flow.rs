//! Minimal flow control for bulk transfers (paper §6.5).
//!
//! "A node manager controls sending the acknowledgment for a bulk data
//! transfer request to the requesting node so that only one such transfer
//! is active at a time. The support for flow control reduces packet
//! back-up in the network, improving network performance as well as
//! processor efficiency."
//!
//! [`FlowControl`] is the receiver-side state machine: at most one bulk
//! transfer is granted at any moment; further requests queue FIFO and are
//! granted as transfers complete. It is pure — it returns the grant the
//! caller must turn into a `BulkAck` packet — so its invariants are
//! directly testable.

use crate::packet::{BulkTag, NodeId};
use std::collections::VecDeque;

/// A grant to be conveyed to a requesting sender as a `BulkAck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The node whose request is being granted.
    pub to: NodeId,
    /// The transfer tag from that node's request.
    pub tag: BulkTag,
}

/// Receiver-side bulk-transfer flow control: one active grant at a time.
#[derive(Debug, Default)]
pub struct FlowControl {
    active: Option<Grant>,
    waiting: VecDeque<Grant>,
    granted_total: u64,
    max_queue: usize,
}

impl FlowControl {
    /// Fresh controller with no active transfer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `BulkRequest` arrived from `src` with `tag`. Returns the grant to
    /// send back immediately, or `None` if another transfer is active (the
    /// request is queued and will be granted later).
    pub fn on_request(&mut self, src: NodeId, tag: BulkTag) -> Option<Grant> {
        let g = Grant { to: src, tag };
        if self.active.is_none() {
            self.active = Some(g);
            self.granted_total += 1;
            Some(g)
        } else {
            self.waiting.push_back(g);
            self.max_queue = self.max_queue.max(self.waiting.len());
            None
        }
    }

    /// The `BulkData` for the active transfer has fully arrived. Returns
    /// the next grant to issue, if any request is waiting.
    ///
    /// # Panics
    /// Panics if the completion does not match the active grant — that
    /// would mean a sender transmitted data without (or with a stale)
    /// grant, violating the protocol.
    pub fn on_data_complete(&mut self, src: NodeId, tag: BulkTag) -> Option<Grant> {
        let active = self
            .active
            .take()
            .expect("bulk data completed with no active grant");
        assert_eq!(
            active,
            Grant { to: src, tag },
            "bulk data does not match the active grant"
        );
        if let Some(next) = self.waiting.pop_front() {
            self.active = Some(next);
            self.granted_total += 1;
            Some(next)
        } else {
            None
        }
    }

    /// The currently active grant, if any.
    pub fn active(&self) -> Option<Grant> {
        self.active
    }

    /// Number of requests waiting for a grant.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Total grants ever issued (diagnostics).
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// High-water mark of the wait queue (diagnostics: congestion signal).
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_granted_immediately() {
        let mut fc = FlowControl::new();
        let g = fc.on_request(3, 100).unwrap();
        assert_eq!(g, Grant { to: 3, tag: 100 });
        assert_eq!(fc.active(), Some(g));
        assert_eq!(fc.queued(), 0);
    }

    #[test]
    fn concurrent_requests_queue_fifo() {
        let mut fc = FlowControl::new();
        assert!(fc.on_request(1, 10).is_some());
        assert!(fc.on_request(2, 20).is_none());
        assert!(fc.on_request(3, 30).is_none());
        assert_eq!(fc.queued(), 2);

        let g2 = fc.on_data_complete(1, 10).unwrap();
        assert_eq!(g2, Grant { to: 2, tag: 20 });
        let g3 = fc.on_data_complete(2, 20).unwrap();
        assert_eq!(g3, Grant { to: 3, tag: 30 });
        assert!(fc.on_data_complete(3, 30).is_none());
        assert_eq!(fc.granted_total(), 3);
        assert_eq!(fc.max_queue_depth(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match the active grant")]
    fn mismatched_completion_panics() {
        let mut fc = FlowControl::new();
        fc.on_request(1, 10);
        fc.on_data_complete(1, 99);
    }

    #[test]
    #[should_panic(expected = "no active grant")]
    fn completion_without_grant_panics() {
        let mut fc = FlowControl::new();
        fc.on_data_complete(0, 0);
    }

    #[test]
    fn never_more_than_one_active_under_random_traffic() {
        // Drive the controller with an arbitrary interleaving and check the
        // single-active invariant throughout.
        let mut fc = FlowControl::new();
        let mut rng = hal_des_rng();
        let mut outstanding: Vec<Grant> = Vec::new();
        let mut next_tag = 0u64;
        for _ in 0..10_000 {
            let do_request = outstanding.is_empty() || rng_next(&mut rng).is_multiple_of(2);
            if do_request {
                let src = (rng_next(&mut rng) % 8) as NodeId;
                next_tag += 1;
                if let Some(g) = fc.on_request(src, next_tag) {
                    outstanding.push(g);
                }
            } else if let Some(active) = fc.active() {
                if let Some(g) = fc.on_data_complete(active.to, active.tag) {
                    outstanding.push(g);
                }
                outstanding.retain(|g| *g != active);
            }
            // Invariant: grants handed out but not completed == active one.
            assert!(outstanding.len() <= 1);
            assert_eq!(outstanding.first().copied(), fc.active());
        }
    }

    // Tiny local RNG to avoid a dev-dependency cycle.
    fn hal_des_rng() -> u64 {
        0x9E3779B97F4A7C15
    }
    fn rng_next(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }
}
