//! The threaded network: one OS thread per node, real message passing.
//!
//! This substrate exercises the same kernel code as [`crate::sim`] but
//! with genuine concurrency: each simulated node is an OS thread and
//! packets travel over mpsc channels. It is used by the examples, by the
//! live backend (`hal-kernel`'s `Machine::live`), and by integration
//! tests that check the runtime is actually `Send`-correct and free of
//! shared-memory shortcuts between "nodes" — faithful to the paper's
//! distributed-memory setting, where nodes communicate only through the
//! network interface.
//!
//! Links come in two flavors:
//!
//! * **unbounded** ([`thread_network`]) — sends never block; fine for
//!   tests and short examples;
//! * **bounded** ([`thread_network_bounded`]) — each node's receive
//!   queue holds at most `capacity` packets. A send finding the queue
//!   full *blocks* until the receiver drains (a real NI's injection
//!   stall) and the stall is counted in
//!   [`ThreadNetStats::backpressure_hits`], so an overloaded live run
//!   degrades measurably instead of growing the heap without bound.

use crate::packet::{AmEnvelope, NodeId, Packet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;

/// Shared counters for the threaded network.
#[derive(Default, Debug)]
pub struct ThreadNetStats {
    /// Packets sent across all nodes.
    pub packets: AtomicU64,
    /// Envelope payload bytes sent across all nodes.
    pub bytes: AtomicU64,
    /// Sends that found a bounded receive queue full and had to block
    /// until the receiver drained (0 on unbounded networks).
    pub backpressure_hits: AtomicU64,
    /// Packets dropped because the destination endpoint was already
    /// torn down (normal during shutdown; anything else is a bug).
    pub dropped_on_close: AtomicU64,
}

/// A sender to one node's receive queue — unbounded or bounded.
enum Tx<P> {
    Unbounded(Sender<Packet<P>>),
    Bounded(SyncSender<Packet<P>>),
}

impl<P> Clone for Tx<P> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(t) => Tx::Unbounded(t.clone()),
            Tx::Bounded(t) => Tx::Bounded(t.clone()),
        }
    }
}

/// One node's attachment point to the threaded network.
///
/// Owns the node's receive queue and senders to every peer. Endpoints are
/// created together by [`thread_network`] / [`thread_network_bounded`]
/// and then moved into their node threads.
pub struct ThreadEndpoint<P> {
    me: NodeId,
    rx: Receiver<Packet<P>>,
    peers: Vec<Tx<P>>,
    stats: Arc<ThreadNetStats>,
}

impl<P: Send + 'static> ThreadEndpoint<P> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.peers.len()
    }

    /// Send an envelope to `dst`. `wire_bytes` feeds the byte counter
    /// (mirrors [`crate::sim::SimNetwork::inject`]'s signature).
    ///
    /// Sending to self is allowed — the packet loops back through the
    /// receive queue, exactly as a self-addressed active message would.
    ///
    /// On a bounded network a full destination queue blocks the sender
    /// until space frees up, bumping
    /// [`ThreadNetStats::backpressure_hits`] once per stalled send. A
    /// send to a node that already shut down is dropped and counted in
    /// [`ThreadNetStats::dropped_on_close`].
    pub fn send(&self, dst: NodeId, body: AmEnvelope<P>, wire_bytes: usize) {
        self.stats.packets.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(wire_bytes as u64, Ordering::Relaxed);
        let pkt = Packet {
            src: self.me,
            dst,
            body,
        };
        match &self.peers[dst as usize] {
            // Unbounded channel: send only fails if the receiver hung
            // up, which in our machines means the partition is shutting
            // down.
            Tx::Unbounded(tx) => {
                if tx.send(pkt).is_err() {
                    self.stats.dropped_on_close.fetch_add(1, Ordering::Relaxed);
                }
            }
            Tx::Bounded(tx) => match tx.try_send(pkt) {
                Ok(()) => {}
                Err(TrySendError::Full(pkt)) => {
                    // Injection stall: the receiver's queue is at
                    // capacity. Count it, then block — backpressure, not
                    // loss (the reliable layer above would retransmit a
                    // drop anyway; blocking is both cheaper and honest
                    // about the overload).
                    self.stats.backpressure_hits.fetch_add(1, Ordering::Relaxed);
                    if tx.send(pkt).is_err() {
                        self.stats.dropped_on_close.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.stats.dropped_on_close.fetch_add(1, Ordering::Relaxed);
                }
            },
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Packet<P>> {
        match self.rx.try_recv() {
            Ok(p) => Some(p),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive; `None` when every sender (including our own
    /// loopback) has been dropped.
    pub fn recv(&self) -> Option<Packet<P>> {
        self.rx.recv().ok()
    }

    /// Blocking receive with a wall-clock timeout.
    pub fn recv_timeout(&self, dur: std::time::Duration) -> Option<Packet<P>> {
        self.rx.recv_timeout(dur).ok()
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &Arc<ThreadNetStats> {
        &self.stats
    }
}

/// Build a fully connected threaded network of `nodes` nodes with
/// unbounded links.
///
/// Returns one endpoint per node; move each into its node thread.
pub fn thread_network<P: Send + 'static>(nodes: usize) -> Vec<ThreadEndpoint<P>> {
    build_network(nodes, None)
}

/// Build a fully connected threaded network whose receive queues hold at
/// most `capacity` packets each — see [`ThreadEndpoint::send`] for the
/// blocking-backpressure semantics. `capacity` must be positive.
pub fn thread_network_bounded<P: Send + 'static>(
    nodes: usize,
    capacity: usize,
) -> Vec<ThreadEndpoint<P>> {
    assert!(capacity > 0, "bounded network needs a positive capacity");
    build_network(nodes, Some(capacity))
}

fn build_network<P: Send + 'static>(
    nodes: usize,
    capacity: Option<usize>,
) -> Vec<ThreadEndpoint<P>> {
    assert!(nodes > 0 && nodes <= u16::MAX as usize + 1, "node count out of range");
    let stats = Arc::new(ThreadNetStats::default());
    let mut txs = Vec::with_capacity(nodes);
    let mut rxs = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        match capacity {
            None => {
                let (tx, rx) = channel();
                txs.push(Tx::Unbounded(tx));
                rxs.push(rx);
            }
            Some(cap) => {
                let (tx, rx) = sync_channel(cap);
                txs.push(Tx::Bounded(tx));
                rxs.push(rx);
            }
        }
    }
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| ThreadEndpoint {
            me: i as NodeId,
            rx,
            peers: txs.clone(),
            stats: Arc::clone(&stats),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = thread_network::<u32>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, AmEnvelope::Small(42), 4);
        let pkt = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(pkt.src, 0);
        assert_eq!(pkt.body, AmEnvelope::Small(42));
    }

    #[test]
    fn loopback_to_self_works() {
        let eps = thread_network::<u32>(1);
        eps[0].send(0, AmEnvelope::Small(9), 4);
        let pkt = eps[0].try_recv().unwrap();
        assert_eq!(pkt.src, 0);
        assert_eq!(pkt.dst, 0);
    }

    #[test]
    fn per_link_order_is_fifo() {
        let mut eps = thread_network::<u32>(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..100 {
            a.send(1, AmEnvelope::Small(i), 4);
        }
        for i in 0..100 {
            let pkt = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(pkt.body, AmEnvelope::Small(i));
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = thread_network::<u64>(4);
        let handles: Vec<_> = eps
            .drain(..)
            .map(|ep| {
                std::thread::spawn(move || {
                    let me = ep.node();
                    // Everyone sends one message to every other node…
                    for dst in 0..ep.nodes() as NodeId {
                        if dst != me {
                            ep.send(dst, AmEnvelope::Small(me as u64), 8);
                        }
                    }
                    // …and receives nodes-1 messages.
                    let mut got = 0;
                    while got < ep.nodes() - 1 {
                        if ep.recv_timeout(Duration::from_secs(5)).is_some() {
                            got += 1;
                        } else {
                            panic!("timed out");
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn stats_shared_across_endpoints() {
        let eps = thread_network::<u32>(3);
        eps[0].send(1, AmEnvelope::Small(1), 10);
        eps[2].send(1, AmEnvelope::Small(2), 5);
        assert_eq!(eps[1].stats().packets.load(Ordering::Relaxed), 2);
        assert_eq!(eps[1].stats().bytes.load(Ordering::Relaxed), 15);
        assert_eq!(eps[1].stats().backpressure_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn try_recv_empty_is_none() {
        let eps = thread_network::<u32>(2);
        assert!(eps[0].try_recv().is_none());
    }

    #[test]
    fn bounded_network_delivers_and_counts_backpressure() {
        let mut eps = thread_network_bounded::<u32>(2, 4);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        // Fill the queue, then overflow it from another thread while the
        // receiver drains slowly: the sender must block (not drop) and
        // the stall must be counted.
        let sender = std::thread::spawn(move || {
            for i in 0..32 {
                a.send(1, AmEnvelope::Small(i), 4);
            }
            a
        });
        let mut got = Vec::new();
        while got.len() < 32 {
            if let Some(pkt) = b.recv_timeout(Duration::from_secs(5)) {
                if let AmEnvelope::Small(v) = pkt.body {
                    got.push(v);
                }
                std::thread::sleep(Duration::from_micros(200));
            } else {
                panic!("bounded delivery timed out");
            }
        }
        let a = sender.join().unwrap();
        assert_eq!(got, (0..32).collect::<Vec<_>>(), "FIFO order preserved");
        assert!(
            a.stats().backpressure_hits.load(Ordering::Relaxed) > 0,
            "a 4-deep queue fed 32 packets against a slow reader must stall"
        );
    }

    #[test]
    fn bounded_send_to_closed_endpoint_is_dropped_not_deadlocked() {
        let mut eps = thread_network_bounded::<u32>(2, 1);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b); // node 1 shut down
        for i in 0..8 {
            a.send(1, AmEnvelope::Small(i), 4); // must not block forever
        }
        assert!(a.stats().dropped_on_close.load(Ordering::Relaxed) >= 7);
    }
}
