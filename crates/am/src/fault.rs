//! Deterministic fault injection for the simulated network.
//!
//! The paper's delivery algorithm (§4.3, Fig. 3) is argued to survive
//! migration races, but the simulator's links are perfect: nothing is
//! ever dropped, duplicated, or reordered, so robustness is asserted
//! rather than demonstrated. A [`FaultPlan`] turns the perfect fabric
//! into a hostile one — per-link drop/duplicate/reorder probabilities,
//! timed link outages, and node pause windows — while keeping every run
//! **reproducible from the master seed**:
//!
//! * fault decisions are made inside [`crate::LinkState::admit`], the
//!   single point every executor (sequential or windowed-parallel)
//!   funnels injections through in one canonical order;
//! * the fault RNG is a dedicated [`Pcg32`] stream derived from the
//!   machine seed, and every admission consumes a **fixed number of
//!   draws** regardless of outcome, so the stream position is a pure
//!   function of the admission sequence;
//! * timed faults (outages, pauses) are pure functions of virtual time.
//!
//! The plan carries the reliable-delivery tuning knobs too (retransmit
//! timeout/backoff, FIR watchdog), so one value configures the whole
//! chaos subsystem through `MachineConfig`.

use crate::packet::NodeId;
use hal_des::{Pcg32, VirtualDuration, VirtualTime};

/// A scheduled window during which every packet admitted on one
/// directed link is lost (a timed one-shot fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkOutage {
    /// Sending side of the dead link.
    pub src: NodeId,
    /// Receiving side of the dead link.
    pub dst: NodeId,
    /// Start of the outage (inclusive, injection time).
    pub from: VirtualTime,
    /// End of the outage (exclusive).
    pub until: VirtualTime,
}

/// A scheduled window during which one node freezes: packet handling
/// and dispatcher steps that would begin inside the window slip to its
/// end (the node "pauses", then "resumes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePause {
    /// The paused node.
    pub node: NodeId,
    /// Start of the pause (inclusive).
    pub from: VirtualTime,
    /// End of the pause (exclusive).
    pub until: VirtualTime,
}

/// The full fault-injection + reliable-delivery configuration.
///
/// The default plan is *no faults*: [`FaultPlan::enabled`] returns
/// `false` and the simulator's behavior (costs, stats, reports) is
/// byte-identical to a build without the chaos subsystem.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an admitted packet is lost in the
    /// fabric (sender-side costs are still paid).
    pub drop: f64,
    /// Probability in `[0, 1]` that the fabric delivers a second copy
    /// of an admitted packet (only reliable-layer packets can be
    /// copied; the copy arrives after an extra random delay).
    pub duplicate: f64,
    /// Probability in `[0, 1]` that an admitted packet skips the
    /// per-link FIFO clamp and takes an extra random delay, letting
    /// later packets overtake it.
    pub reorder: f64,
    /// Upper bound of the extra delay a duplicated or reordered packet
    /// suffers (drawn uniformly from `[0, reorder_window)`).
    pub reorder_window: VirtualDuration,
    /// Timed windows during which one directed link drops everything.
    pub link_outages: Vec<LinkOutage>,
    /// Timed windows during which one node freezes.
    pub node_pauses: Vec<NodePause>,
    /// Engage the reliable-delivery protocol (per-link sequence
    /// numbers, cumulative acks, timeout/backoff retransmit, in-order
    /// holdback). On by default; turning it off exposes raw fault
    /// behavior to the kernel protocols — useful for experiments like
    /// the FIR-watchdog unit test, but exactly-once delivery no longer
    /// holds under drop/duplicate faults.
    pub reliable: bool,
    /// Initial retransmit timeout: an unacked reliable packet is
    /// re-sent this long after transmission, then with exponential
    /// backoff.
    pub rto: VirtualDuration,
    /// Cap on the backed-off retransmit (and FIR watchdog) interval.
    pub rto_max: VirtualDuration,
    /// FIR watchdog: an FIR still unanswered this long after it was
    /// sent is re-issued toward the current best-guess location.
    pub fir_timeout: VirtualDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: VirtualDuration::from_nanos(20_000),
            link_outages: Vec::new(),
            node_pauses: Vec::new(),
            reliable: true,
            rto: VirtualDuration::from_nanos(100_000),
            rto_max: VirtualDuration::from_nanos(3_200_000),
            fir_timeout: VirtualDuration::from_nanos(300_000),
        }
    }
}

impl FaultPlan {
    /// The no-fault plan (same as [`FaultPlan::default`]).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan dropping, duplicating and reordering packets at `rate`
    /// (duplication at half `rate`) — the standard chaos mix used by
    /// the `chaos_delivery` bench.
    pub fn chaos(rate: f64) -> Self {
        FaultPlan {
            drop: rate,
            duplicate: rate / 2.0,
            reorder: rate,
            ..Self::default()
        }
    }

    /// Set the drop probability (builder style).
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Set the duplicate probability (builder style).
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Set the reorder probability (builder style).
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Add a timed link outage (builder style).
    pub fn with_outage(mut self, outage: LinkOutage) -> Self {
        self.link_outages.push(outage);
        self
    }

    /// Add a timed node pause (builder style).
    pub fn with_pause(mut self, pause: NodePause) -> Self {
        self.node_pauses.push(pause);
        self
    }

    /// Enable or disable the reliable-delivery protocol (builder
    /// style). See [`FaultPlan::reliable`].
    pub fn with_reliable(mut self, on: bool) -> Self {
        self.reliable = on;
        self
    }

    /// True when any fault is configured — the chaos subsystem (fault
    /// decisions, reliable delivery, FIR watchdog) engages only then,
    /// so a fault-free run is byte-identical to one without the
    /// subsystem.
    pub fn enabled(&self) -> bool {
        self.link_faults() || !self.node_pauses.is_empty()
    }

    /// True when link-level faults are configured (the part that lives
    /// inside [`crate::LinkState::admit`]).
    pub fn link_faults(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0 || !self.link_outages.is_empty()
    }

    /// Pause windows for one node, sorted by start time (the kernel
    /// applies them in order, so cascading windows compose).
    pub fn pauses_for(&self, node: NodeId) -> Vec<(VirtualTime, VirtualTime)> {
        let mut v: Vec<(VirtualTime, VirtualTime)> = self
            .node_pauses
            .iter()
            .filter(|p| p.node == node)
            .map(|p| (p.from, p.until))
            .collect();
        v.sort_unstable();
        v
    }
}

/// What the fault layer decided for one admitted packet.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RawFate {
    /// Deliver normally.
    Deliver,
    /// Lose the packet in the fabric.
    Drop,
    /// Deliver, plus a second copy delayed by the given extra time.
    Dup(VirtualDuration),
    /// Deliver late (skip the FIFO clamp, add the given extra delay).
    Delay(VirtualDuration),
}

/// Per-[`crate::LinkState`] fault machinery: the plan plus its dedicated
/// RNG stream.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Pcg32,
}

/// Stream selector for the fault RNG — keeps fault draws disjoint from
/// every other consumer of the machine seed.
const FAULT_STREAM: u64 = 0xFA17;

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultState {
            plan,
            rng: Pcg32::new(seed, FAULT_STREAM),
        }
    }

    /// Decide the fate of one admission. Consumes exactly four RNG
    /// draws on every call, so the stream position depends only on the
    /// admission sequence — the determinism anchor for the windowed
    /// executor's barrier replay.
    pub(crate) fn decide(&mut self, now: VirtualTime, src: NodeId, dst: NodeId) -> RawFate {
        let r_drop = self.rng.next_f64();
        let r_dup = self.rng.next_f64();
        let r_reorder = self.rng.next_f64();
        let r_extra = self.rng.next_f64();
        for o in &self.plan.link_outages {
            if o.src == src && o.dst == dst && now >= o.from && now < o.until {
                if std::env::var("HAL_FAULT_TRACE").is_ok() {
                    eprintln!("[{now}] OUTAGE drop {src}->{dst}");
                }
                return RawFate::Drop;
            }
        }
        let extra = VirtualDuration::from_nanos(
            (self.plan.reorder_window.as_nanos() as f64 * r_extra) as u64,
        );
        if r_drop < self.plan.drop {
            RawFate::Drop
        } else if r_dup < self.plan.duplicate {
            RawFate::Dup(extra)
        } else if r_reorder < self.plan.reorder {
            RawFate::Delay(extra)
        } else {
            RawFate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled() {
        let p = FaultPlan::default();
        assert!(!p.enabled());
        assert!(!p.link_faults());
        assert!(p.reliable);
    }

    #[test]
    fn chaos_plan_is_enabled() {
        assert!(FaultPlan::chaos(0.1).enabled());
        assert!(FaultPlan::none().with_drop(0.2).link_faults());
        assert!(
            FaultPlan::none()
                .with_pause(NodePause {
                    node: 1,
                    from: VirtualTime::ZERO,
                    until: VirtualTime::from_nanos(10),
                })
                .enabled()
        );
    }

    #[test]
    fn decide_is_deterministic_per_seed() {
        let plan = FaultPlan::chaos(0.3);
        let mut a = FaultState::new(plan.clone(), 42);
        let mut b = FaultState::new(plan, 42);
        for i in 0..100u64 {
            let t = VirtualTime::from_nanos(i * 17);
            let fa = format!("{:?}", a.decide(t, 0, 1));
            let fb = format!("{:?}", b.decide(t, 0, 1));
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn outage_drops_regardless_of_probabilities() {
        let plan = FaultPlan::none().with_outage(LinkOutage {
            src: 0,
            dst: 1,
            from: VirtualTime::from_nanos(100),
            until: VirtualTime::from_nanos(200),
        });
        let mut f = FaultState::new(plan, 7);
        assert!(matches!(
            f.decide(VirtualTime::from_nanos(150), 0, 1),
            RawFate::Drop
        ));
        assert!(matches!(
            f.decide(VirtualTime::from_nanos(150), 1, 0),
            RawFate::Deliver
        ));
        assert!(matches!(
            f.decide(VirtualTime::from_nanos(200), 0, 1),
            RawFate::Deliver
        ));
    }

    #[test]
    fn pauses_for_filters_and_sorts() {
        let plan = FaultPlan::none()
            .with_pause(NodePause {
                node: 2,
                from: VirtualTime::from_nanos(500),
                until: VirtualTime::from_nanos(600),
            })
            .with_pause(NodePause {
                node: 2,
                from: VirtualTime::from_nanos(100),
                until: VirtualTime::from_nanos(200),
            })
            .with_pause(NodePause {
                node: 3,
                from: VirtualTime::ZERO,
                until: VirtualTime::from_nanos(50),
            });
        let w = plan.pauses_for(2);
        assert_eq!(w.len(), 2);
        assert!(w[0].0 < w[1].0);
        assert!(plan.pauses_for(0).is_empty());
    }
}
