//! Randomized property tests for the active-message layer: flow-control
//! safety and liveness, bulk-transfer exactly-once, and simulated-network
//! causal ordering.
//!
//! Inputs are generated from the workspace's own deterministic
//! [`SplitMix64`] stream (seeded per case) instead of an external
//! property-testing framework, so the suite runs with no network access
//! and every failure is reproducible from the printed case number.

use hal_am::{AmEnvelope, BulkSender, FlowControl, LinkModel, SimNetwork};
use hal_des::{SplitMix64, VirtualTime};

/// Draw a value in `[lo, hi)`.
fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

/// Flow control: at most one grant active; every request eventually
/// granted exactly once; grants issue in FIFO order.
#[test]
fn flow_control_safety_and_liveness() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xF10C + case);
        let len = range(&mut rng, 1, 400) as usize;
        let schedule: Vec<bool> = (0..len).map(|_| rng.next_u64() & 1 == 1).collect();

        let mut fc = FlowControl::new();
        let mut next_tag = 0u64;
        let mut granted_order = Vec::new();
        let mut requested_order = Vec::new();
        let mut active: Option<hal_am::Grant> = None;

        for do_request in schedule {
            if do_request || active.is_none() {
                next_tag += 1;
                requested_order.push(next_tag);
                if let Some(g) = fc.on_request((next_tag % 5) as u16, next_tag) {
                    assert!(active.is_none(), "case {case}: second active grant");
                    granted_order.push(g.tag);
                    active = Some(g);
                }
            } else if let Some(g) = active.take() {
                if let Some(next) = fc.on_data_complete(g.to, g.tag) {
                    granted_order.push(next.tag);
                    active = Some(next);
                }
            }
        }
        // Drain.
        while let Some(g) = active.take() {
            if let Some(next) = fc.on_data_complete(g.to, g.tag) {
                granted_order.push(next.tag);
                active = Some(next);
            }
        }
        assert_eq!(
            granted_order, requested_order,
            "case {case}: FIFO grants, exactly once"
        );
        assert_eq!(fc.granted_total(), requested_order.len() as u64);
        assert_eq!(fc.queued(), 0);
    }
}

/// Bulk sender: every begun transfer is released exactly once with its
/// own payload, regardless of ack order.
#[test]
fn bulk_transfers_release_their_own_payload() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::new(0xB01C + case);
        let len = range(&mut rng, 1, 60) as usize;
        let payloads: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();

        let mut tx = BulkSender::new(3);
        let mut tags = Vec::new();
        for (i, &p) in payloads.iter().enumerate() {
            let (tag, env) = tx.begin((i % 7) as u16, p, 4);
            assert!(
                matches!(env, AmEnvelope::BulkRequest { .. }),
                "case {case}: expected a BulkRequest envelope"
            );
            tags.push((tag, p, (i % 7) as u16));
        }
        // Ack in reverse order (worst case for any accidental FIFO
        // assumption in the sender).
        for &(tag, p, dst) in tags.iter().rev() {
            let (d, env, _) = tx.on_ack(tag);
            assert_eq!(d, dst);
            match env {
                AmEnvelope::BulkData { body, .. } => assert_eq!(body, p),
                other => panic!("case {case}: expected data, got {other:?}"),
            }
        }
        assert_eq!(tx.in_progress(), 0);
    }
}

/// SimNetwork: for monotone (in-virtual-time-order) injections, each
/// (src,dst) link is FIFO and arrival never precedes injection.
#[test]
fn sim_network_monotone_injections_are_causal() {
    for case in 0..128u64 {
        let mut rng = SplitMix64::new(0x51E7 + case);
        let n_sends = range(&mut rng, 1, 120) as usize;
        let mut net = SimNetwork::new(4, LinkModel::cm5());
        let mut now = 0u64;
        for seq in 0..n_sends {
            let src = range(&mut rng, 0, 4) as u16;
            let dst = range(&mut rng, 0, 4) as u16;
            let dt = range(&mut rng, 0, 500);
            let bytes = range(&mut rng, 0, 200) as usize;
            now += dt;
            net.inject(
                VirtualTime::from_nanos(now),
                src,
                dst,
                AmEnvelope::Small((seq as u64, now)),
                bytes,
            );
        }
        // Drain and check per-link order + causality.
        let mut last_per_link = std::collections::HashMap::new();
        let mut arrivals = Vec::new();
        while let Some((t, pkt)) = net.pop() {
            arrivals.push((t, pkt.src, pkt.dst, pkt.body));
        }
        // Arrivals pop in global time order by construction of the queue;
        // verify per-link monotone sequence numbers and causality.
        for (t, src, dst, body) in arrivals {
            let AmEnvelope::Small((s, injected_at)) = body else { unreachable!() };
            assert!(
                t.as_nanos() >= injected_at,
                "case {case}: arrived before injection"
            );
            if let Some(prev) = last_per_link.insert((src, dst), s) {
                assert!(
                    prev < s,
                    "case {case}: link ({src},{dst}) reordered {prev} after {s}"
                );
            }
        }
    }
}

/// Deterministic (non-randomized) regression: out-of-order injections (an
/// interrupt handler's earlier-timestamped send) must not be delayed by
/// state that later-timestamped injections established first.
#[test]
fn out_of_order_injection_is_not_serialized_behind_the_future() {
    let mut net = SimNetwork::new(2, LinkModel::cm5());
    // A long step injects far in the virtual future...
    net.inject(
        VirtualTime::from_nanos(9_000_000),
        0,
        1,
        AmEnvelope::Small("future"),
        50_000,
    );
    // ...then an interrupt handler injects at an earlier virtual time.
    net.inject(
        VirtualTime::from_nanos(20_000),
        0,
        1,
        AmEnvelope::Small("interrupt"),
        16,
    );
    let (t1, p1) = net.pop().unwrap();
    assert_eq!(p1.body, AmEnvelope::Small("interrupt"));
    assert!(
        t1.as_nanos() < 100_000,
        "interrupt packet delayed to {t1:?}"
    );
    let (t2, p2) = net.pop().unwrap();
    assert_eq!(p2.body, AmEnvelope::Small("future"));
    assert!(t2.as_nanos() >= 9_000_000);
}
