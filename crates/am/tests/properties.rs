//! Property tests for the active-message layer: flow-control safety and
//! liveness, bulk-transfer exactly-once, and simulated-network causal
//! ordering.

use hal_am::{AmEnvelope, BulkSender, FlowControl, LinkModel, SimNetwork};
use hal_des::VirtualTime;
use proptest::prelude::*;

proptest! {
    /// Flow control: at most one grant active; every request eventually
    /// granted exactly once; grants issue in FIFO order.
    #[test]
    fn flow_control_safety_and_liveness(
        schedule in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut fc = FlowControl::new();
        let mut next_tag = 0u64;
        let mut granted_order = Vec::new();
        let mut requested_order = Vec::new();
        let mut active: Option<hal_am::Grant> = None;

        for do_request in schedule {
            if do_request || active.is_none() {
                next_tag += 1;
                requested_order.push(next_tag);
                if let Some(g) = fc.on_request((next_tag % 5) as u16, next_tag) {
                    prop_assert!(active.is_none(), "second active grant");
                    granted_order.push(g.tag);
                    active = Some(g);
                }
            } else if let Some(g) = active.take() {
                if let Some(next) = fc.on_data_complete(g.to, g.tag) {
                    granted_order.push(next.tag);
                    active = Some(next);
                }
            }
        }
        // Drain.
        while let Some(g) = active.take() {
            if let Some(next) = fc.on_data_complete(g.to, g.tag) {
                granted_order.push(next.tag);
                active = Some(next);
            }
        }
        prop_assert_eq!(&granted_order, &requested_order, "FIFO grants, exactly once");
        prop_assert_eq!(fc.granted_total(), requested_order.len() as u64);
        prop_assert_eq!(fc.queued(), 0);
    }

    /// Bulk sender: every begun transfer is released exactly once with
    /// its own payload, regardless of ack order.
    #[test]
    fn bulk_transfers_release_their_own_payload(
        payloads in prop::collection::vec(any::<u32>(), 1..60),
    ) {
        let mut tx = BulkSender::new(3);
        let mut tags = Vec::new();
        for (i, &p) in payloads.iter().enumerate() {
            let (tag, env) = tx.begin((i % 7) as u16, p, 4);
            let is_req = matches!(env, AmEnvelope::BulkRequest { .. });
            prop_assert!(is_req, "expected a BulkRequest envelope");
            tags.push((tag, p, (i % 7) as u16));
        }
        // Ack in reverse order (worst case for any accidental FIFO
        // assumption in the sender).
        for &(tag, p, dst) in tags.iter().rev() {
            let (d, env, _) = tx.on_ack(tag);
            prop_assert_eq!(d, dst);
            match env {
                AmEnvelope::BulkData { body, .. } => prop_assert_eq!(body, p),
                other => {
                    let msg = format!("expected data, got {other:?}");
                    prop_assert!(false, "{}", msg);
                }
            }
        }
        prop_assert_eq!(tx.in_progress(), 0);
    }

    /// SimNetwork: for monotone (in-virtual-time-order) injections, each
    /// (src,dst) link is FIFO and arrival never precedes injection.
    #[test]
    fn sim_network_monotone_injections_are_causal(
        sends in prop::collection::vec((0u8..4, 0u8..4, 0u64..500, 0usize..200), 1..120),
    ) {
        let mut net = SimNetwork::new(4, LinkModel::cm5());
        let mut now = 0u64;
        for (seq, (src, dst, dt, bytes)) in sends.into_iter().enumerate() {
            now += dt;
            net.inject(
                VirtualTime::from_nanos(now),
                src as u16,
                dst as u16,
                AmEnvelope::Small((seq as u64, now)),
                bytes,
            );
        }
        // Drain and check per-link order + causality.
        let mut last_per_link = std::collections::HashMap::new();
        let mut arrivals = Vec::new();
        while let Some((t, pkt)) = net.pop() {
            arrivals.push((t, pkt.src, pkt.dst, pkt.body));
        }
        // Arrivals pop in global time order by construction of the queue;
        // verify per-link monotone sequence numbers and causality.
        for (t, src, dst, body) in arrivals {
            let AmEnvelope::Small((s, injected_at)) = body else { unreachable!() };
            prop_assert!(t.as_nanos() >= injected_at, "arrived before injection");
            if let Some(prev) = last_per_link.insert((src, dst), s) {
                prop_assert!(prev < s, "link ({src},{dst}) reordered {prev} after {s}");
            }
        }
    }
}

/// Deterministic (non-proptest) regression: out-of-order injections (an
/// interrupt handler's earlier-timestamped send) must not be delayed by
/// state that later-timestamped injections established first.
#[test]
fn out_of_order_injection_is_not_serialized_behind_the_future() {
    let mut net = SimNetwork::new(2, LinkModel::cm5());
    // A long step injects far in the virtual future...
    net.inject(
        VirtualTime::from_nanos(9_000_000),
        0,
        1,
        AmEnvelope::Small("future"),
        50_000,
    );
    // ...then an interrupt handler injects at an earlier virtual time.
    net.inject(
        VirtualTime::from_nanos(20_000),
        0,
        1,
        AmEnvelope::Small("interrupt"),
        16,
    );
    let (t1, p1) = net.pop().unwrap();
    assert_eq!(p1.body, AmEnvelope::Small("interrupt"));
    assert!(
        t1.as_nanos() < 100_000,
        "interrupt packet delayed to {t1:?}"
    );
    let (t2, p2) = net.pop().unwrap();
    assert_eq!(p2.body, AmEnvelope::Small("future"));
    assert!(t2.as_nanos() >= 9_000_000);
}
