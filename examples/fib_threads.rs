//! Fibonacci with dynamic load balancing on the *threaded* machine —
//! the same kernel code as the simulator, but with one OS thread per
//! node and real channels (the examples' "networks of workstations"
//! mode the paper's conclusions point toward).
//!
//! Run with: `cargo run --release --example fib_threads`

use hal::prelude::*;
use hal_workloads::fib::{self, FibConfig, Placement};
use std::time::Duration;

fn main() {
    let n = 24u64;
    let nodes = 4;

    let mut program = Program::new();
    let fib_id = fib::register(&mut program);

    let report = hal::thread_run(
        MachineConfig::builder(nodes).load_balancing(true).build().unwrap(),
        program,
        Duration::from_secs(60),
        move |ctx| {
            fib::bootstrap(
                ctx,
                fib_id,
                FibConfig {
                    n,
                    grain: 8,
                    placement: Placement::Local,
                },
            );
        },
    );

    assert!(!report.timed_out, "machine stopped cleanly");
    let v = report.value("fib").expect("completed").as_int() as u64;
    println!("fib({n})                = {v}");
    println!("expected              = {}", hal_baselines::fib_iter(n));
    println!("wall clock            = {:?}", report.wall);
    println!("actors created        = {}", report.actors_created);
    println!("work stolen (actors)  = {}", report.stats.get("steal.granted"));
    println!("migrations in-flight  = {}", report.stats.get("migrations.in"));
    assert_eq!(v, hal_baselines::fib_iter(n));
}
