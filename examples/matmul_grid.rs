//! Systolic (Cannon) matrix multiplication on an actor grid — the
//! Table 5 workload as a library client: run it, validate the numeric
//! result against the sequential baseline, and report MFLOPS.
//!
//! Run with: `cargo run --release --example matmul_grid`

use hal::MachineConfig;
use hal_baselines::gemm;
use hal_workloads::matmul::{assemble, extract_c, run_sim, MatmulConfig};

fn main() {
    let cfg = MatmulConfig {
        grid: 4,   // 4x4 actor grid on 16 simulated nodes
        block: 32, // 128x128 matrices overall
        per_flop_ns: 135,
        seed_a: 41,
        seed_b: 42,
    };
    let n = cfg.n();
    println!("multiplying {n}x{n} on a {0}x{0} actor grid (P = {1})", cfg.grid, cfg.grid * cfg.grid);

    let (fro, report) = run_sim(MachineConfig::new(cfg.grid * cfg.grid), cfg, true);

    // Validate against the sequential kernel.
    let a = assemble(cfg.seed_a, cfg.grid, cfg.block);
    let b = assemble(cfg.seed_b, cfg.grid, cfg.block);
    let mut expect = vec![0.0; n * n];
    gemm::matmul_naive(&a, &b, &mut expect, n);
    let c = extract_c(&report, cfg);
    let err = gemm::max_abs_diff(&c, &expect);

    let t = report.makespan.as_secs_f64();
    let mflops = 2.0 * (n as f64).powi(3) / t / 1e6;
    println!("virtual time            : {:.3} ms", t * 1e3);
    println!("simulated MFLOPS        : {mflops:.0}");
    println!("Frobenius norm of C     : {fro:.3}");
    println!("max error vs sequential : {err:.2e}");
    println!(
        "messages deferred by the per-actor synchronization constraint: {}",
        report.stats.get("sync.deferred")
    );
    assert!(err < 1e-9, "systolic result must match the reference");
}
