//! Location transparency on tour: an actor migrates around the
//! partition while another keeps messaging it by the *same* mail
//! address. Shows the §4.3 machinery at work — FIR chases, duplicate
//! suppression, forwarding, and name-table repair.
//!
//! A relentless migrator is the adversarial case for the paper's "best
//! guess" tables (they assume "migration is a relatively infrequent
//! event"): the chase trails the tourist by one hop and the probes are
//! all delivered — exactly once — as it slows down. Set `HAL_FIR_TRACE=1`
//! to watch every FIR relay and repair.
//!
//! Run with: `cargo run --release --example migration_tour`

use hal::prelude::*;
use hal_kernel::ContRef;

/// Wanders the partition: on each `hop` message it migrates to the next
/// node; `probe` messages must find it wherever it currently lives.
struct Tourist {
    hops_left: i64,
    probes_seen: i64,
}

impl Behavior for Tourist {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // hop
            0 => {
                if self.hops_left > 0 {
                    self.hops_left -= 1;
                    // Linger a while at each stop so probes race the tour.
                    ctx.charge(hal_des::VirtualDuration::from_micros(300));
                    let me = ctx.me();
                    let next = ((ctx.node() as usize + 1) % ctx.nodes()) as u16;
                    ctx.send(me, 0, vec![]); // keep touring after arrival
                    ctx.migrate(next);
                } else {
                    ctx.report("tour_ended_on", Value::Int(ctx.node() as i64));
                }
            }
            // probe
            1 => {
                self.probes_seen += 1;
                // Record where and when the probe caught us.
                let at = ctx.now().as_micros() as i64;
                ctx.report("probe", Value::Int(ctx.node() as i64));
                ctx.report("probe_at_us", Value::Int(at));
                if let Some(cont) = ctx.customer() {
                    ctx.reply_to(cont, Value::Int(self.probes_seen));
                }
            }
            _ => unreachable!(),
        }
    }
    fn name(&self) -> &'static str {
        "tourist"
    }
}

/// Sends a probe, waits for the reply, sends the next — until `left`
/// probes have been acknowledged, then stops the machine.
struct Prober {
    target: MailAddr,
    left: i64,
}

impl Behavior for Prober {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // kick / reply-received
            0 => {
                if self.left == 0 {
                    ctx.stop();
                    return;
                }
                self.left -= 1;
                let me = ctx.me();
                ctx.request(
                    self.target,
                    1,
                    vec![],
                    ContRef::Actor {
                        addr: me,
                        selector: 0,
                    },
                );
            }
            _ => unreachable!(),
        }
    }
    fn name(&self) -> &'static str {
        "prober"
    }
}

fn make_prober(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Prober {
        target: args[0].as_addr(),
        left: args[1].as_int(),
    })
}

fn main() {
    let nodes = 8;
    let hops = 24i64;
    let probes = 12i64;

    let mut program = Program::new();
    let prober = program.behavior("prober", make_prober);

    let report = hal::sim_run(MachineConfig::new(nodes), program, |ctx| {
        let tourist = ctx.create_local(Box::new(Tourist {
            hops_left: hops,
            probes_seen: 0,
        }));
        ctx.send(tourist, 0, vec![]); // start the tour
        // The prober lives three nodes away and chases by mail address.
        let p = ctx.create_on(3, prober, vec![Value::Addr(tourist), Value::Int(probes)]);
        ctx.send(p, 0, vec![]);
    });

    let caught_on: Vec<i64> = report
        .values("probe")
        .into_iter()
        .map(|v| v.as_int())
        .collect();
    let caught_at: Vec<i64> = report
        .values("probe_at_us")
        .into_iter()
        .map(|v| v.as_int())
        .collect();
    println!("caught at (us)         : {caught_at:?}");
    println!("tourist hopped {hops} times across {nodes} nodes");
    println!("probes delivered       : {} / {probes}", caught_on.len());
    println!("caught on nodes        : {caught_on:?}");
    println!("migrations             : {}", report.stats.get("migrations.out"));
    println!("FIR chases sent        : {}", report.stats.get("fir.sent"));
    println!("FIRs suppressed (dup)  : {}", report.stats.get("fir.suppressed"));
    println!("direct forwards        : {}", report.stats.get("deliver.forwarded"));
    println!("virtual time           : {}", report.makespan);
    assert_eq!(caught_on.len() as i64, probes, "exactly-once delivery");
}
