//! Distributed garbage collection in action — the paper's §9 future
//! work ("the use of locality descriptors … has the advantage of
//! supporting an efficient garbage collection scheme") realized as a
//! coordinator-driven distributed mark & sweep.
//!
//! A pinned registry actor holds a chain of service actors spread over
//! the partition (some of which migrate); a pile of temporaries becomes
//! garbage. The collector traces the chain across nodes — through
//! best-guess descriptors and forward pointers — and frees exactly the
//! garbage.
//!
//! Run with: `cargo run --release --example garbage_collection`

use hal::prelude::*;
use hal_kernel::SimMachine;

/// Holds acquaintances and can adopt more; declares them for tracing
/// (the hook the HAL compiler generated automatically).
struct Registry {
    held: Vec<MailAddr>,
}

impl Behavior for Registry {
    fn dispatch(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        for v in &msg.args {
            self.held.push(v.as_addr());
        }
    }
    fn acquaintances(&self) -> Vec<MailAddr> {
        self.held.clone()
    }
    fn name(&self) -> &'static str {
        "registry"
    }
}

/// A service that may migrate away after creation — the collector must
/// find it through its forward chain.
struct Service {
    next: Option<MailAddr>,
}

impl Behavior for Service {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // adopt the next link
            0 => self.next = Some(msg.args[0].as_addr()),
            // wander to another node
            1 => ctx.migrate(msg.args[0].as_int() as u16),
            _ => unreachable!(),
        }
    }
    fn acquaintances(&self) -> Vec<MailAddr> {
        self.next.into_iter().collect()
    }
    fn name(&self) -> &'static str {
        "service"
    }
}

fn make_service(_: &[Value]) -> Box<dyn Behavior> {
    Box::new(Service { next: None })
}

fn main() {
    let mut program = Program::new();
    let service = program.behavior("service", make_service);

    let mut m = SimMachine::new(MachineConfig::new(6), program.build());
    let registry = m.with_ctx(0, |ctx| {
        // A chain of services across nodes 1..5; the registry holds the head.
        let mut head: Option<MailAddr> = None;
        for node in (1..6u16).rev() {
            let s = ctx.create_on(node, service, vec![]);
            if let Some(next) = head {
                ctx.send(s, 0, vec![Value::Addr(next)]);
            }
            head = Some(s);
        }
        // The chain's second link wanders off to node 0.
        if let Some(h) = head {
            // (the head itself migrates: the registry must still reach it)
            ctx.send(h, 1, vec![Value::Int(0)]);
        }
        let registry = ctx.create_local(Box::new(Registry {
            held: head.into_iter().collect(),
        }));
        ctx.pin(registry);

        // Temporaries that become garbage.
        for node in 0..6u16 {
            for _ in 0..7 {
                ctx.create_on(node, service, vec![]);
            }
        }
        registry
    });
    m.run().unwrap();

    let before: usize = (0..6u16).map(|n| m.kernel(n).actor_count()).sum();
    let report = m.collect_garbage().unwrap();
    let after: usize = (0..6u16).map(|n| m.kernel(n).actor_count()).sum();

    println!("actors before collection : {before}");
    println!("freed                    : {}", report.freed);
    println!("mark rounds              : {}", report.rounds);
    println!("live after               : {} ({after} counted)", report.live);
    println!("pinned registry + 5-link chain survive; 42 temporaries are freed");
    assert_eq!(report.freed, 42);
    assert_eq!(report.live, 6);
    let _ = registry;
}
