//! Map-reduce with actor groups and tree reduction: `grpnew` spreads a
//! worker per partition slot, a spanning-tree broadcast (§6.4) starts
//! the map phase, and the reduction collective (the broadcast tree run
//! in reverse) folds the partial results — no global synchronization
//! anywhere, just counters.
//!
//! The job: count primes below N, split across 32 workers on 8 nodes.
//!
//! Run with: `cargo run --release --example map_reduce`

use hal::collectives::{self, Op};
use hal::prelude::*;

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// A map worker: counts primes in its slice and contributes the count
/// to its node's combiner.
struct Worker {
    index: u64,
    count: u64,
    limit: u64,
}

impl Behavior for Worker {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // Start: args carry the combiner addresses, one per node.
        let combiners: Vec<MailAddr> = msg.args.iter().map(|v| v.as_addr()).collect();
        let lo = self.limit * self.index / self.count;
        let hi = self.limit * (self.index + 1) / self.count;
        let primes = (lo..hi).filter(|&x| is_prime(x)).count() as i64;
        // Charge the map work to the virtual clock (~40ns per trial
        // division on the 33MHz SPARC would be generous; keep it simple).
        ctx.charge(hal_des::VirtualDuration::from_nanos((hi - lo) * 500));
        collectives::contribute(ctx, combiners[ctx.node() as usize], primes);
    }
    fn name(&self) -> &'static str {
        "map-worker"
    }
}

fn make_worker(args: &[Value]) -> Box<dyn Behavior> {
    // grpnew appends [Group, Int(index), Int(count)].
    let n = args.len();
    Box::new(Worker {
        limit: args[0].as_int() as u64,
        index: args[n - 2].as_int() as u64,
        count: args[n - 1].as_int() as u64,
    })
}

fn main() {
    let nodes = 8usize;
    let workers = 32u32;
    let limit = 50_000u64;

    let mut program = Program::new();
    let worker = program.behavior("map-worker", make_worker);
    let combiner = collectives::register(&mut program);

    let report = hal::sim_run(MachineConfig::new(nodes), program, move |ctx| {
        let jc = ctx.create_join(
            1,
            vec![],
            Box::new(|ctx, mut vals| {
                ctx.report("primes", vals.pop().unwrap());
                ctx.stop();
            }),
        );
        // One combiner per node; each expects that node's worker count.
        let per_node: Vec<usize> = (0..nodes)
            .map(|n| {
                hal_kernel::group::members_on(n as u16, workers, nodes, Mapping::Block).count()
            })
            .collect();
        let combiners =
            collectives::tree_reduce(ctx, combiner, Op::SumInt, &per_node, ctx.cont_slot(jc, 0));
        // Map phase: create the worker group and broadcast Start with
        // the combiner directory.
        let g = ctx.grpnew(worker, workers, vec![Value::Int(limit as i64)]);
        let args: Vec<Value> = combiners.into_iter().map(Value::Addr).collect();
        ctx.broadcast(g, 0, args);
    });

    let got = report.value("primes").expect("job completed").as_int() as u64;
    let expect = (0..limit).filter(|&x| is_prime(x)).count() as u64;
    println!("primes below {limit}     : {got}");
    println!("sequential check        : {expect}");
    println!("virtual time            : {}", report.makespan);
    println!(
        "workers {workers} on {nodes} nodes; broadcast down the spanning tree, \
         reduction back up it"
    );
    assert_eq!(got, expect);
}
