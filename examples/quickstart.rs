//! Quickstart: define a behavior, create actors across nodes, do a
//! call/return, and read the result back from the machine report.
//!
//! Run with: `cargo run --release --example quickstart`

use hal::prelude::*;

/// A greeter actor: replies to `greet(n)` with `n * 2 + 1`.
struct Greeter;

impl Behavior for Greeter {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            0 => {
                let n = msg.args[0].as_int();
                // `reply` answers the customer continuation carried by
                // the request message (§6.2).
                ctx.reply(Value::Int(n * 2 + 1));
            }
            _ => unreachable!(),
        }
    }
    fn name(&self) -> &'static str {
        "greeter"
    }
}

fn make_greeter(_args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Greeter)
}

fn main() {
    // A "program" is the registry of behaviors every node loads.
    let mut program = Program::new();
    let greeter = program.behavior("greeter", make_greeter);

    // Four simulated CM-5 nodes.
    let report = hal::sim_run(MachineConfig::new(4), program, |ctx| {
        // Create one greeter on every node. Remote creations return an
        // *alias* immediately (§5) — no round trip.
        let greeters: Vec<MailAddr> = (0..4u16)
            .map(|node| ctx.create_on(node, greeter, vec![]))
            .collect();

        // Ask all four in parallel; the join continuation fires when the
        // last reply lands.
        let mut join = JoinBuilder::new();
        for (i, g) in greeters.iter().enumerate() {
            join = join.call(*g, 0, vec![Value::Int(i as i64)]);
        }
        join.then(ctx, |ctx, vals| {
            let sum: i64 = vals.iter().map(|v| v.as_int()).sum();
            ctx.report("sum", Value::Int(sum));
            ctx.stop();
        });
    });

    // (0*2+1) + (1*2+1) + (2*2+1) + (3*2+1) = 16
    let sum = report.value("sum").expect("machine completed").as_int();
    println!("sum of greetings        : {sum}");
    println!("virtual execution time  : {}", report.makespan);
    println!("actors created          : {}", report.actors_created);
    println!("network packets         : {}", report.stats.get("net.packets"));
    assert_eq!(sum, 16);
}
