//! Local vs global synchronization on Cholesky factorization — the
//! §2.2 / Table 1 story in one program: the pipelined variant (local
//! synchronization constraints only) against the globally synchronized
//! one, with numeric validation.
//!
//! Run with: `cargo run --release --example cholesky_pipeline`

use hal::MachineConfig;
use hal_baselines::{cholesky_seq, random_spd};
use hal_workloads::cholesky::{extract_l, run_sim, CholeskyConfig, Variant};

fn main() {
    let n = 64;
    let p = 8;
    let seed = 2024;

    println!("Cholesky of a {n}x{n} SPD matrix on {p} simulated nodes\n");

    let mut reference = random_spd(n, seed);
    cholesky_seq(&mut reference, n);

    for variant in Variant::all() {
        let cfg = CholeskyConfig {
            n,
            variant,
            per_flop_ns: 140,
            seed,
        };
        let (_, report) = run_sim(MachineConfig::new(p), cfg, true);
        let l = extract_l(&report, n);
        let mut err = 0.0f64;
        for i in 0..n {
            for j in 0..=i {
                err = err.max((l[i * n + j] - reference[i * n + j]).abs());
            }
        }
        println!(
            "{variant:<6?} time = {:>9.3} ms   bulk transfers = {:>5}   max err = {err:.1e}",
            report.makespan.as_secs_f64() * 1e3,
            report.stats.get("net.bulk_requests"),
        );
        assert!(err < 1e-9, "{variant:?} numeric mismatch");
    }

    println!(
        "\nBP/CP pipeline iterations with local synchronization only and win;\n\
         Seq/Bcast complete each iteration globally before the next starts."
    );
}
