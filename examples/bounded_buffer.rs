//! The classic bounded buffer, synchronized *only* by §6.1 disabling
//! conditions — the paper's "modular specification of local
//! synchronization constraints".
//!
//! `put` is disabled at capacity and `get` when empty; the kernel parks
//! disabled messages in the pending queue and redelivers them as the
//! buffer's state changes. Producers and consumers on different nodes
//! hammer one buffer actor with no locks, no acks, no retries — the
//! constraint *is* the synchronization.
//!
//! Run with: `cargo run --release --example bounded_buffer`

use hal::prelude::*;
use hal_kernel::ContRef;
use std::collections::VecDeque;

const PUT: Selector = 0;
const GET: Selector = 1;

struct Buffer {
    items: VecDeque<i64>,
    capacity: usize,
    puts: u64,
    gets: u64,
}

impl Behavior for Buffer {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            PUT => {
                self.items.push_back(msg.args[0].as_int());
                self.puts += 1;
                assert!(self.items.len() <= self.capacity, "constraint violated");
            }
            GET => {
                let v = self.items.pop_front().expect("constraint violated");
                self.gets += 1;
                ctx.reply(Value::Int(v));
            }
            _ => unreachable!(),
        }
    }

    /// The entire synchronization specification of the program.
    fn enabled(&self, selector: Selector, _args: &[Value]) -> bool {
        match selector {
            PUT => self.items.len() < self.capacity,
            GET => !self.items.is_empty(),
            _ => true,
        }
    }

    fn name(&self) -> &'static str {
        "bounded-buffer"
    }
}

/// Produces `n` items into the buffer, pacing itself only by virtual
/// compute (no flow-control handshake — the buffer's constraint absorbs
/// bursts).
struct Producer {
    buffer: MailAddr,
    n: i64,
    base: i64,
}
impl Behavior for Producer {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        for i in 0..self.n {
            ctx.send(self.buffer, PUT, vec![Value::Int(self.base + i)]);
        }
    }
}

/// Requests `n` items; sums the replies; reports and (if last) stops.
struct Consumer {
    buffer: MailAddr,
    left: i64,
    sum: i64,
    last: bool,
}
impl Behavior for Consumer {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.selector {
            // kick: issue all requests; replies come back on selector 1.
            0 => {
                let me = ctx.me();
                for _ in 0..self.left {
                    ctx.request(
                        self.buffer,
                        GET,
                        vec![],
                        ContRef::Actor {
                            addr: me,
                            selector: 1,
                        },
                    );
                }
            }
            1 => {
                self.sum += msg.args[0].as_int();
                self.left -= 1;
                if self.left == 0 {
                    ctx.report("consumed_sum", Value::Int(self.sum));
                    if self.last {
                        ctx.stop();
                    }
                }
            }
            _ => unreachable!(),
        }
    }
}

fn make_producer(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Producer {
        buffer: args[0].as_addr(),
        n: args[1].as_int(),
        base: args[2].as_int(),
    })
}
fn make_consumer(args: &[Value]) -> Box<dyn Behavior> {
    Box::new(Consumer {
        buffer: args[0].as_addr(),
        left: args[1].as_int(),
        sum: 0,
        last: args[2].as_int() != 0,
    })
}

fn main() {
    let per_side = 40i64;
    let mut program = Program::new();
    let producer = program.behavior("producer", make_producer);
    let consumer = program.behavior("consumer", make_consumer);

    let report = hal::sim_run(MachineConfig::new(5), program, |ctx| {
        let buffer = ctx.create_local(Box::new(Buffer {
            items: VecDeque::new(),
            capacity: 4,
            puts: 0,
            gets: 0,
        }));
        // Two producers and two consumers on distinct nodes.
        for (node, base) in [(1u16, 0i64), (2, 1000)] {
            let p = ctx.create_on(
                node,
                producer,
                vec![Value::Addr(buffer), Value::Int(per_side), Value::Int(base)],
            );
            ctx.send(p, 0, vec![]);
        }
        for (node, last) in [(3u16, 0i64), (4, 1)] {
            let c = ctx.create_on(
                node,
                consumer,
                vec![Value::Addr(buffer), Value::Int(per_side), Value::Int(last)],
            );
            ctx.send(c, 0, vec![]);
        }
    });

    let sums: Vec<i64> = report
        .values("consumed_sum")
        .into_iter()
        .map(|v| v.as_int())
        .collect();
    let total: i64 = sums.iter().sum();
    let expect: i64 = (0..per_side).sum::<i64>() + (0..per_side).map(|i| 1000 + i).sum::<i64>();
    println!("consumers received sums : {sums:?} (total {total})");
    println!("expected total          : {expect}");
    println!(
        "messages deferred by constraints: {} (each later resumed: {})",
        report.stats.get("sync.deferred"),
        report.stats.get("sync.resumed"),
    );
    println!("virtual time            : {}", report.makespan);
    assert_eq!(total, expect, "every item produced is consumed exactly once");
    assert!(report.stats.get("sync.deferred") > 0, "constraints did real work");
}
