//! Root helper library for the hal-rs reproduction — shared by the
//! examples and the cross-crate integration tests.
//!
//! The interesting code lives in the workspace crates (start at
//! [`hal`]); this crate re-exports the full stack under one name so
//! `examples/` and `tests/` can reach every layer.

pub use hal;
pub use hal_am;
pub use hal_baselines;
pub use hal_des;
pub use hal_kernel;
pub use hal_workloads;

/// The paper this workspace reproduces.
pub const PAPER: &str = "Kim & Agha, \"Efficient Support of Location Transparency in \
     Concurrent Object-Oriented Programming Languages\", SC '95";

#[cfg(test)]
mod tests {
    #[test]
    fn stack_is_reachable() {
        // One end-to-end touch of every layer through the re-exports.
        let d = crate::hal_des::VirtualDuration::from_micros(5);
        assert_eq!(d.as_nanos(), 5_000);
        assert_eq!(crate::hal_am::bcast::total_sends(8), 7);
        assert_eq!(crate::hal_baselines::fib_iter(10), 55);
        assert!(crate::PAPER.contains("SC '95"));
    }
}
