#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access is required —
# the workspace is dependency-free by design (see DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
