#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access is required —
# the workspace is dependency-free by design (see DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== parallel-equivalence smoke =="
# The windowed executor must produce byte-identical results at any host
# parallelism. Run two representative harnesses quick, sequential vs
# 4 threads, and diff their stdout (timing goes to stderr only).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
mkdir -p "$smoke_dir/results"   # run from here so quick runs don't clobber committed results/
smoke() {
  local bin="$1" exe="$PWD/target/release/$1"
  (cd "$smoke_dir" && HAL_PARALLEL=1 "$exe" --quick >"$bin.seq.out" 2>/dev/null)
  (cd "$smoke_dir" && HAL_PARALLEL=4 "$exe" --quick >"$bin.par.out" 2>/dev/null)
  diff "$smoke_dir/$bin.seq.out" "$smoke_dir/$bin.par.out" \
    || { echo "ci: $bin output differs between HAL_PARALLEL=1 and 4"; exit 1; }
  echo "   $bin: identical across parallelism"
}
smoke table4_fib
smoke fig3_delivery

echo "== chaos smoke =="
# Seeded fault injection must be deterministic too: the chaos harness
# asserts exactly-once delivery internally, and its stdout (fault
# decisions included) must not depend on executor parallelism.
smoke chaos_delivery

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "ci: all gates passed"
