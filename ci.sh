#!/usr/bin/env bash
# Offline CI gate: build, test, lint. No network access is required —
# the workspace is dependency-free by design (see DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy pedantic (kernel + check + profile + perf) =="
# The protocol-critical crates additionally hold a pedantic bar. The
# allow list below is the accepted legacy noise (cast styles, must_use
# candidates, doc completeness); anything pedantic outside it fails.
cargo clippy -p hal-kernel -p hal-check -p hal-profile -p hal-perf --all-targets -- -D warnings -W clippy::pedantic \
  -A clippy::cast_possible_truncation -A clippy::cast_lossless -A clippy::cast_sign_loss \
  -A clippy::cast_precision_loss -A clippy::cast_possible_wrap -A clippy::must_use_candidate \
  -A clippy::return_self_not_must_use -A clippy::missing_panics_doc -A clippy::missing_errors_doc \
  -A clippy::doc_markdown -A clippy::redundant_closure_for_method_calls -A clippy::unnested_or_patterns \
  -A clippy::uninlined_format_args -A clippy::too_many_lines -A clippy::single_match_else \
  -A clippy::semicolon_if_nothing_returned -A clippy::match_same_arms -A clippy::map_unwrap_or \
  -A clippy::if_not_else -A clippy::format_push_string -A clippy::unreadable_literal \
  -A clippy::struct_excessive_bools -A clippy::similar_names -A clippy::needless_pass_by_value \
  -A clippy::many_single_char_names -A clippy::items_after_statements -A clippy::float_cmp \
  -A clippy::enum_glob_use -A clippy::elidable_lifetime_names -A clippy::checked_conversions

echo "== parallel-equivalence smoke =="
# The windowed executor must produce byte-identical results at any host
# parallelism. Run two representative harnesses quick, sequential vs
# 4 threads, and diff their stdout (timing goes to stderr only).
# HAL_PARALLEL_FORCE keeps K=4 honest on small hosts: the bench bins cap
# requested K at the visible cores otherwise, and this smoke exists to
# exercise the threaded paths even on 1-core CI.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
mkdir -p "$smoke_dir/results"   # run from here so quick runs don't clobber committed results/
smoke() {
  local bin="$1" exe="$PWD/target/release/$1"
  (cd "$smoke_dir" && HAL_PARALLEL=1 "$exe" --quick >"$bin.seq.out" 2>/dev/null)
  (cd "$smoke_dir" && HAL_PARALLEL=4 HAL_PARALLEL_FORCE=1 "$exe" --quick >"$bin.par.out" 2>/dev/null)
  diff "$smoke_dir/$bin.seq.out" "$smoke_dir/$bin.par.out" \
    || { echo "ci: $bin output differs between HAL_PARALLEL=1 and 4"; exit 1; }
  echo "   $bin: identical across parallelism"
}
smoke table4_fib
smoke fig3_delivery

echo "== chaos smoke =="
# Seeded fault injection must be deterministic too: the chaos harness
# asserts exactly-once delivery internally, and its stdout (fault
# decisions included) must not depend on executor parallelism.
smoke chaos_delivery

echo "== spans/metrics smoke (table4_fib --spans --metrics) =="
# The observability exports are derived from virtual-time facts only:
# SPANS_/METRICS_ JSON must be byte-identical across executor
# parallelism, and the in-process assert guarantees the critical path
# never exceeds the makespan. Two runs, K=1 vs K=4, byte-compared.
obs() {
  local k="$1" tag="$2" exe="$PWD/target/release/table4_fib"
  (cd "$smoke_dir" && HAL_PARALLEL=$k HAL_PARALLEL_FORCE=1 HAL_SPANS=1 HAL_METRICS=1 "$exe" --quick \
     >"obs.$tag.out" 2>/dev/null)
  for f in SPANS_table4_fib.json METRICS_table4_fib.json; do
    [ -s "$smoke_dir/results/$f" ] || { echo "ci: $f missing/empty at K=$k"; exit 1; }
    cp "$smoke_dir/results/$f" "$smoke_dir/$tag.$f"
  done
}
obs 1 seq
obs 4 par
for f in SPANS_table4_fib.json METRICS_table4_fib.json; do
  cmp -s "$smoke_dir/seq.$f" "$smoke_dir/par.$f" \
    || { echo "ci: $f differs between HAL_PARALLEL=1 and 4"; exit 1; }
done
grep -q '"critical_path"' "$smoke_dir/results/SPANS_table4_fib.json" \
  || { echo "ci: SPANS_table4_fib.json has no critical_path section"; exit 1; }
grep -q '"samples"' "$smoke_dir/results/METRICS_table4_fib.json" \
  || { echo "ci: METRICS_table4_fib.json has no timeseries samples"; exit 1; }
echo "   table4_fib: spans+metrics present, byte-identical across parallelism"

echo "== protocol checker + observability sweep (repro_all --quick --check --spans --metrics) =="
# Every harness under the hal-check protocol invariant checker, both
# sequentially (HAL_PARALLEL=1) and on the windowed executor at a
# host-derived pinned K (available_parallelism clamped to [2, 7]) —
# repro_all runs each bin at both levels when --check is on, fails if
# any verdict is dirty, byte-compares every span/metrics export across
# the two levels, and writes a manifest of expected artifacts. Run from
# the scratch dir so committed results/ stay untouched.
repo_root="$PWD"
(cd "$smoke_dir" && "$repo_root/target/release/repro_all" --quick --check --spans --metrics 2>&1 | tail -n 20) \
  || { echo "ci: protocol checker sweep failed"; exit 1; }
grep -q '"clean": true' "$smoke_dir/results/CHECK_repro_all.json" \
  || { echo "ci: CHECK_repro_all.json is not clean"; exit 1; }
grep -q 'SPANS_table5_matmul.json' "$smoke_dir/results/MANIFEST_repro_all.json" \
  || { echo "ci: MANIFEST_repro_all.json is missing span artifacts"; exit 1; }
echo "   repro_all --check --spans --metrics: CLEAN at K=1 and the host-derived pinned K"

echo "== perf-gate (hal-perf diff vs results/baselines) =="
# Host-time attribution + throughput rot gate. Two representative bins
# run quick at K=7 with the profiler on; hal-perf then (a) summarizes
# the PROF_ artifacts as a smoke test and (b) diffs the fresh BENCH_/
# PROF_ artifacts against the committed baselines with generous
# thresholds (deterministic virtual facts exactly; host throughput may
# drop to 25% of baseline before failing — the CI container is 1-core
# and noisy). `./ci.sh --update-baselines` regenerates the committed
# files instead of diffing.
perf_bins="table4_fib fig3_delivery"
for bin in $perf_bins; do
  (cd "$smoke_dir" && HAL_PARALLEL=7 HAL_PARALLEL_FORCE=1 HAL_PROF=1 "$repo_root/target/release/$bin" --quick \
     >/dev/null 2>"$bin.prof.err")
  for f in "BENCH_$bin.json" "PROF_$bin.json" "PROF_${bin}_hosttrace.json"; do
    [ -s "$smoke_dir/results/$f" ] || { echo "ci: $f missing/empty after --prof run"; exit 1; }
  done
done
# Capture to a file rather than piping into `grep -q`: -q closes the
# pipe at the first match and the second summary's print would EPIPE.
"$repo_root/target/release/hal-perf" summarize \
  "$smoke_dir/results/PROF_table4_fib.json" "$smoke_dir/results/PROF_fig3_delivery.json" \
  > "$smoke_dir/perf_summary.txt" \
  || { echo "ci: hal-perf summarize failed"; exit 1; }
grep -q "top overhead source:" "$smoke_dir/perf_summary.txt" \
  || { echo "ci: hal-perf summarize produced no verdict"; exit 1; }
if [ "${1:-}" = "--update-baselines" ]; then
  mkdir -p results/baselines
  for bin in $perf_bins; do
    cp "$smoke_dir/results/BENCH_$bin.json" "$smoke_dir/results/PROF_$bin.json" results/baselines/
  done
  # The repro_all sweep above left its sequential-vs-parallel speedup
  # table in the scratch results/ — baseline it so `hal-perf diff` can
  # gate per-bin speedup regressions (the `speedup` check).
  cp "$smoke_dir/results/BENCH_repro_all.json" results/baselines/
  echo "   baselines regenerated under results/baselines/ — review and commit"
else
  "$repo_root/target/release/hal-perf" diff \
    --baselines results/baselines --fresh "$smoke_dir/results" \
    || { echo "ci: perf gate failed against committed baselines"; exit 1; }
  # The gate must also FAIL when pointed at a genuinely regressed
  # baseline: inflate the committed throughput 10000x so the fresh run
  # looks collapsed, and require a nonzero exit.
  mkdir -p "$smoke_dir/regressed_baselines"
  for f in results/baselines/*.json; do
    sed 's/"events_per_sec": \([0-9][0-9]*\)/"events_per_sec": \19999/g' "$f" \
      >"$smoke_dir/regressed_baselines/$(basename "$f")"
  done
  if "$repo_root/target/release/hal-perf" diff \
       --baselines "$smoke_dir/regressed_baselines" --fresh "$smoke_dir/results" >/dev/null 2>&1; then
    echo "ci: hal-perf diff passed on a synthetically regressed baseline — the gate is inert"
    exit 1
  fi
  echo "   perf gate: committed baselines pass, synthetic regression caught"
fi

echo "== live-serve smoke (hal-serve --backend=live) =="
# The live backend under open-loop load: ~1s of wall at a modest rate
# through a 3-stage pipeline on 2 real kernel threads, with the flight
# recorder + hal-check on (--check exits nonzero on any protocol
# violation) and the SLO gate armed. `--verify` then re-parses the
# SERVE_ artifact and asserts the percentile ladder is sane
# (p50 <= p99 <= p999 <= max, completed <= offered).
(cd "$smoke_dir" && "$repo_root/target/release/hal-serve" \
   --backend=live --scenario=ci_smoke --nodes=2 --stages=3 \
   --rate=400 --requests=400 --stage-cost-us=20 --check >/dev/null) \
  || { echo "ci: live hal-serve run failed (SLO miss or checker violation)"; exit 1; }
"$repo_root/target/release/hal-serve" --verify "$smoke_dir/results/SERVE_ci_smoke.json" \
  || { echo "ci: SERVE_ci_smoke.json failed artifact verification"; exit 1; }
echo "   hal-serve: live pipeline sustained load, artifact verified, checker CLEAN"

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "ci: all gates passed"
